"""Algorithm 4 — Failed-Ops Pruning.

Some replicated data structures reject updates whose preconditions no longer
hold (add an existing set element, remove a missing one — paper Figure 6).
If, in an interleaving, every declared *predecessor* event executes before
every declared *successor* event, then all the successors fail, and
interleavings that differ only in the relative order of those doomed
successors are equivalent.

Canonical key: when the all-predecessors-before-all-successors condition
holds (with the predecessors' relative order fixed, per the paper's
``p' < p'' => s' < s''`` clause being about preserving relative positions),
the successors are sorted into their positions; otherwise the interleaving
is its own class.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Sequence, Tuple

from repro.core.errors import ConstraintError
from repro.core.interleavings import Interleaving
from repro.core.pruning.base import Pruner


class FailedOpsPruner(Pruner):
    """Keep one representative per doomed-successor-order class."""

    name = "failed_ops"

    def __init__(
        self,
        predecessor_ids: Iterable[str],
        successor_ids: Iterable[str],
    ) -> None:
        super().__init__()
        self.predecessor_ids = frozenset(predecessor_ids)
        self.successor_ids = frozenset(successor_ids)
        if not self.predecessor_ids or not self.successor_ids:
            raise ConstraintError("failed-ops needs predecessors and successors")
        if self.predecessor_ids & self.successor_ids:
            raise ConstraintError("an event cannot be both predecessor and successor")

    def key(self, interleaving: Interleaving) -> Hashable:
        # Namespaced like EventIndependencePruner.key: a raw (own-class) id
        # sequence must never collide with a canonicalised one.
        ids = [event.event_id for event in interleaving]
        pred_positions = [
            index for index, eid in enumerate(ids) if eid in self.predecessor_ids
        ]
        succ_positions = [
            index for index, eid in enumerate(ids) if eid in self.successor_ids
        ]
        if not pred_positions or not succ_positions:
            return ("raw", tuple(ids))
        if max(pred_positions) > min(succ_positions):
            # Some successor runs before a predecessor: its precondition may
            # still hold, so orders are NOT exchangeable — own class.
            return ("raw", tuple(ids))
        # All successors are doomed; their relative order is irrelevant.
        sorted_successors = sorted(ids[index] for index in succ_positions)
        for slot, index in enumerate(succ_positions):
            ids[index] = sorted_successors[slot]
        return ("canon", tuple(ids))
