"""ER-pi's four pruning algorithms (paper section 3)."""

from repro.core.pruning.base import ClassSampler, Pruner, PrunerPipeline, PruneStats
from repro.core.pruning.failed_ops import FailedOpsPruner
from repro.core.pruning.grouping import EventGroupPruner
from repro.core.pruning.independence import EventIndependencePruner, default_interference
from repro.core.pruning.replica_specific import (
    ReadScopedPruner,
    ReplicaSpecificPruner,
    observation_signature,
)

__all__ = [
    "ClassSampler",
    "EventGroupPruner",
    "EventIndependencePruner",
    "FailedOpsPruner",
    "PruneStats",
    "Pruner",
    "PrunerPipeline",
    "ReadScopedPruner",
    "ReplicaSpecificPruner",
    "default_interference",
    "observation_signature",
]
