"""ER-pi's four pruning algorithms (paper section 3)."""

from repro.core.pruning.base import ClassSampler, Pruner, PrunerPipeline, PruneStats
from repro.core.pruning.failed_ops import FailedOpsPruner
from repro.core.pruning.grouping import EventGroupPruner
from repro.core.pruning.independence import EventIndependencePruner, default_interference
from repro.core.pruning.replica_specific import (
    ReadScopedPruner,
    ReplicaSpecificPruner,
    observation_signature,
)
from repro.core.pruning.semantic import (
    DPORPruner,
    StateMemoPruner,
    event_footprint,
    trace_normal_form,
)

__all__ = [
    "ClassSampler",
    "DPORPruner",
    "EventGroupPruner",
    "EventIndependencePruner",
    "FailedOpsPruner",
    "PruneStats",
    "Pruner",
    "PrunerPipeline",
    "ReadScopedPruner",
    "ReplicaSpecificPruner",
    "StateMemoPruner",
    "default_interference",
    "event_footprint",
    "observation_signature",
    "trace_normal_form",
]
