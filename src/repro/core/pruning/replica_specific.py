"""Algorithm 2 — Replica-Specific Pruning.

When the developer explores the behaviour of one particular replica, two
interleavings are equivalent iff that replica *observes* the same history:
its own events in the same order, and every sync executed at it delivering
the same sender state.  "The same sender state" is causal: it covers the
sender's own events before the paired sync request **and**, transitively,
whatever the sender had itself synced in (paper Figure 4 shows the 2-replica
case; the transitive closure handles chains across 3+ replicas soundly).

The canonical key is therefore the *observation signature*: a recursive
digest of the replica's event sequence where each ``EXEC_SYNC`` embeds the
signature of the sender at the moment the paired ``SYNC_REQ`` was issued.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.events import Event, EventKind
from repro.core.interleavings import Interleaving
from repro.core.pruning.base import Pruner


def _pair_positions(interleaving: Interleaving) -> Dict[int, int]:
    """Map each EXEC_SYNC position to its paired SYNC_REQ position.

    Pairs are matched per channel in order of occurrence (the i-th execution
    on a channel delivers the i-th request).  An execution with no preceding
    request pairs to -1 — it would deliver nothing at replay time.
    """
    pending: Dict[Tuple[str, str], List[int]] = {}
    pairs: Dict[int, int] = {}
    for position, event in enumerate(interleaving):
        if event.kind == EventKind.SYNC_REQ:
            pending.setdefault(event.channel, []).append(position)
        elif event.kind == EventKind.EXEC_SYNC:
            queue = pending.get(event.channel, [])
            pairs[position] = queue.pop(0) if queue else -1
    return pairs


def observation_signature(interleaving: Interleaving, replica_id: str) -> Hashable:
    """The causally complete observation history of ``replica_id``."""
    pairs = _pair_positions(interleaving)
    memo: Dict[Tuple[str, int], Hashable] = {}

    def state_sig(replica: str, upto: int) -> Hashable:
        cache_key = (replica, upto)
        cached = memo.get(cache_key)
        if cached is not None:
            return cached
        parts: List[Hashable] = []
        for position in range(upto):
            event = interleaving[position]
            if event.replica_id != replica:
                continue
            if event.kind == EventKind.EXEC_SYNC:
                req_position = pairs.get(position, -1)
                if req_position < 0:
                    parts.append((event.event_id, "empty"))
                else:
                    sender = event.from_replica
                    parts.append((event.event_id, state_sig(sender, req_position)))
            elif event.kind == EventKind.SYNC_REQ:
                # Sending a sync does not change the sender's own state.
                continue
            else:
                parts.append(event.event_id)
        signature = tuple(parts)
        memo[cache_key] = signature
        return signature

    return state_sig(replica_id, len(interleaving))


class ReplicaSpecificPruner(Pruner):
    """Keep one representative per observation-signature class."""

    name = "replica_specific"

    def __init__(self, replica_id: str) -> None:
        super().__init__()
        if not replica_id:
            raise ValueError("replica_id must be non-empty")
        self.replica_id = replica_id

    def key(self, interleaving: Interleaving) -> Hashable:
        if any(event.is_fault for event in interleaving):
            # The observation signature models full delivery; fault events
            # (suppressed sends, lost payloads, volatile state) break that
            # model, so fault-bearing schedules never merge: each is its own
            # class (sound, merely less aggressive).
            return tuple(event.event_id for event in interleaving)
        return (self.replica_id, observation_signature(interleaving, self.replica_id))


class ReadScopedPruner(Pruner):
    """Replica-specific pruning scoped to the replica's *last read*.

    When the property under test is what the application observed at its
    final read/query on the target replica (the motivating example's
    "transmit to the municipality"), events ordered after that read cannot
    change the outcome.  The class key is therefore the observation signature
    truncated at the last READ event of the target replica — a strictly
    stronger merge than the paper's hand-derived 24 -> 19 for the motivating
    example (it also merges post-read reorderings with identical prefixes).
    """

    name = "replica_specific_read_scoped"

    def __init__(self, replica_id: str) -> None:
        super().__init__()
        if not replica_id:
            raise ValueError("replica_id must be non-empty")
        self.replica_id = replica_id

    def key(self, interleaving: Interleaving) -> Hashable:
        if any(event.is_fault for event in interleaving):
            # Same conservatism as ReplicaSpecificPruner: no fault-bearing
            # schedule is ever merged away.
            return tuple(event.event_id for event in interleaving)
        last_read = -1
        for position, event in enumerate(interleaving):
            if event.replica_id == self.replica_id and event.kind == EventKind.READ:
                last_read = position
        if last_read < 0:
            return (self.replica_id, observation_signature(interleaving, self.replica_id))
        prefix = interleaving[: last_read + 1]
        return (self.replica_id, "read", observation_signature(prefix, self.replica_id))
