"""Algorithm 1 — Event Group Pruning (pre-generation).

Unlike the other three algorithms, grouping acts *before* interleavings are
generated: it fuses sync request/execute pairs (and developer-specified
pairs) into atomic units, shrinking the permutation base from ``n`` events to
``u`` units — an exact ``n!/u!``-fold reduction.  The actual fusion logic
lives in :func:`repro.core.interleavings.group_events`; this module wraps it
in the pruner interface so grouping shows up uniformly in pruning reports
(Figure 9) and exposes a post-hoc key for agreement testing.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.events import Event, EventKind
from repro.core.interleavings import GroupingResult, Interleaving, group_events
from repro.core.pruning.base import Pruner


class EventGroupPruner(Pruner):
    """Canonical key: the interleaving with each grouped pair collapsed onto
    its first member.

    Interleavings that respect grouping (pair adjacent, request first) map to
    distinct keys; interleavings that scatter a pair map to the same key as
    the collapsed order they would have produced, so only the well-grouped
    representative survives.  Used for Datalog agreement tests and for
    measuring what grouping contributes on materialised sets; the production
    path applies grouping up front via :func:`prepare`.
    """

    name = "event_grouping"

    def __init__(self, spec_groups: Optional[Sequence[Tuple[str, str]]] = None) -> None:
        super().__init__()
        self.spec_groups = tuple(spec_groups or ())
        self._grouping: Optional[GroupingResult] = None

    def prepare(self, events: Sequence[Event]) -> GroupingResult:
        """Run Algorithm 1 on the recorded events and remember the pairing."""
        self._grouping = group_events(events, self.spec_groups)
        return self._grouping

    @property
    def grouping(self) -> GroupingResult:
        if self._grouping is None:
            raise RuntimeError("call prepare() with the recorded events first")
        return self._grouping

    def key(self, interleaving: Interleaving) -> Hashable:
        pairs: Dict[str, str] = dict(self.grouping.grouped_pairs)
        absorbed = set(pairs.values())
        collapsed: List[str] = []
        for event in interleaving:
            if event.event_id in absorbed:
                continue
            collapsed.append(event.event_id)
        return tuple(collapsed)
