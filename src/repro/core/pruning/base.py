"""Common machinery for ER-pi's post-generation pruning algorithms.

Each pruner assigns every interleaving a *canonical class key*; interleavings
with equal keys are guaranteed to be equivalent for the property under test,
so ER-pi replays exactly one representative per class (the paper's "merge
k interleavings into a single one").

Two usage styles:

* batch — ``apply(interleavings)`` dedupes a list, keep-first;
* streaming — an explorer keeps a per-pruner seen-set and calls
  :meth:`Pruner.is_redundant` on each candidate before replaying it, which is
  what makes pruning usable on search spaces too large to materialise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.core.interleavings import Interleaving


@dataclass
class PruneStats:
    """Bookkeeping for one pruner (feeds the Figure-9 benchmark)."""

    name: str
    examined: int = 0
    pruned: int = 0

    @property
    def kept(self) -> int:
        return self.examined - self.pruned


class Pruner(abc.ABC):
    """One pruning algorithm: a canonical-class-key function plus stats."""

    name: str = "pruner"

    def __init__(self) -> None:
        self._seen: Set[Hashable] = set()
        self.stats = PruneStats(name=self.name)

    @abc.abstractmethod
    def key(self, interleaving: Interleaving) -> Hashable:
        """The equivalence-class key of ``interleaving`` for this pruner."""

    def is_redundant(self, interleaving: Interleaving) -> bool:
        """Streaming check: True iff an equivalent interleaving was seen.

        Records the key as a side effect, so call it at most once per
        candidate.
        """
        self.stats.examined += 1
        class_key = self.key(interleaving)
        if class_key in self._seen:
            self.stats.pruned += 1
            return True
        self._seen.add(class_key)
        return False

    def reset(self) -> None:
        self._seen.clear()
        self.stats = PruneStats(name=self.name)

    def apply(self, interleavings: Sequence[Interleaving]) -> List[Interleaving]:
        """Batch dedupe, keep-first.  Uses a fresh seen-set."""
        self.reset()
        return [il for il in interleavings if not self.is_redundant(il)]


class PrunerPipeline:
    """A set of pruners applied jointly: an interleaving is redundant when
    *any* pruner has already seen its class (greedy union of equivalences)."""

    def __init__(self, pruners: Iterable[Pruner]) -> None:
        self.pruners: List[Pruner] = list(pruners)

    def is_redundant(self, interleaving: Interleaving) -> bool:
        # Evaluate every pruner so each one's seen-set and stats stay
        # complete; redundancy is the OR across pruners.
        verdicts = [pruner.is_redundant(interleaving) for pruner in self.pruners]
        return any(verdicts)

    def apply(self, interleavings: Sequence[Interleaving]) -> List[Interleaving]:
        for pruner in self.pruners:
            pruner.reset()
        return [il for il in interleavings if not self.is_redundant(il)]

    def reset(self) -> None:
        for pruner in self.pruners:
            pruner.reset()

    def stats(self) -> Dict[str, PruneStats]:
        return {pruner.name: pruner.stats for pruner in self.pruners}
