"""Common machinery for ER-pi's post-generation pruning algorithms.

Each pruner assigns every interleaving a *canonical class key*; interleavings
with equal keys are guaranteed to be equivalent for the property under test,
so ER-pi replays exactly one representative per class (the paper's "merge
k interleavings into a single one").

Two usage styles:

* batch — ``apply(interleavings)`` dedupes a list, keep-first;
* streaming — an explorer keeps a per-pruner seen-set and calls
  :meth:`Pruner.is_redundant` on each candidate before replaying it, which is
  what makes pruning usable on search spaces too large to materialise.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.interleavings import Interleaving
from repro.obs import NULL_METRICS, NULL_TRACER


@dataclass
class PruneStats:
    """Bookkeeping for one pruner (feeds the Figure-9 benchmark)."""

    name: str
    examined: int = 0
    pruned: int = 0

    @property
    def kept(self) -> int:
        return self.examined - self.pruned


class ClassSampler:
    """Per-class bookkeeping for the differential sanitizer.

    Records, for every equivalence class a pruner sees, the representative
    (the first member — the one the explorer actually replays) and a seeded
    reservoir sample of up to ``sample_k`` *skipped* members, so the
    sanitizer can later replay both sides fresh and assert they agree.
    """

    def __init__(self, sample_k: int = 2, seed: int = 0) -> None:
        if sample_k < 1:
            raise ValueError("sample_k must be >= 1")
        self.sample_k = sample_k
        self._rng = random.Random(f"{seed}:class-sampler")
        self._reps: Dict[Hashable, Interleaving] = {}
        self._samples: Dict[Hashable, List[Interleaving]] = {}
        self._skipped_counts: Dict[Hashable, int] = {}

    def saw_representative(self, class_key: Hashable, interleaving: Interleaving) -> None:
        self._reps[class_key] = interleaving

    def saw_skipped(self, class_key: Hashable, interleaving: Interleaving) -> None:
        count = self._skipped_counts.get(class_key, 0) + 1
        self._skipped_counts[class_key] = count
        bucket = self._samples.setdefault(class_key, [])
        if len(bucket) < self.sample_k:
            bucket.append(interleaving)
        else:
            # Reservoir sampling: every skipped member ends up in the sample
            # with equal probability, however many the class accumulates.
            slot = self._rng.randrange(count)
            if slot < self.sample_k:
                bucket[slot] = interleaving

    def classes(self) -> Iterator[Tuple[Hashable, Interleaving, List[Interleaving]]]:
        """Yield ``(class_key, representative, sampled_skipped_members)`` for
        every class that actually merged at least one interleaving."""
        for class_key, members in self._samples.items():
            yield class_key, self._reps[class_key], list(members)

    @property
    def merged_classes(self) -> int:
        return len(self._samples)

    def clear(self) -> None:
        self._reps.clear()
        self._samples.clear()
        self._skipped_counts.clear()


class Pruner(abc.ABC):
    """One pruning algorithm: a canonical-class-key function plus stats."""

    name: str = "pruner"

    def __init__(self) -> None:
        self._seen: Set[Hashable] = set()
        self.stats = PruneStats(name=self.name)
        self.sampler: Optional[ClassSampler] = None
        #: The class key computed by the most recent :meth:`is_redundant`
        #: call (observability: traced pipelines attach it to prune spans).
        self.last_key: Optional[Hashable] = None

    @abc.abstractmethod
    def key(self, interleaving: Interleaving) -> Hashable:
        """The equivalence-class key of ``interleaving`` for this pruner."""

    def enable_sampling(self, sample_k: int = 2, seed: int = 0) -> ClassSampler:
        """Start recording class representatives + sampled skipped members
        (the input to the differential soundness sanitizer)."""
        self.sampler = ClassSampler(sample_k=sample_k, seed=seed)
        return self.sampler

    def adopt_sampler(self, sampler: ClassSampler) -> None:
        """Replace this pruner's sampler with one populated elsewhere.

        The process-backed parallel explorer's shard merge ships each
        worker's :class:`ClassSampler` back to the parent (it pickles
        cleanly: plain dicts plus a ``random.Random``) and re-attaches the
        canonical worker's sampler here, so ``Sanitizer.finish`` sees the
        classes exactly as a serial hunt would have recorded them.
        """
        if not isinstance(sampler, ClassSampler):
            raise TypeError(
                f"adopt_sampler expects a ClassSampler, got {type(sampler).__name__}"
            )
        self.sampler = sampler

    def is_redundant(self, interleaving: Interleaving) -> bool:
        """Streaming check: True iff an equivalent interleaving was seen.

        Records the key as a side effect, so call it at most once per
        candidate.
        """
        self.stats.examined += 1
        class_key = self.key(interleaving)
        self.last_key = class_key
        sampler = self.sampler
        if class_key in self._seen:
            self.stats.pruned += 1
            if sampler is not None:
                sampler.saw_skipped(class_key, interleaving)
            return True
        self._seen.add(class_key)
        if sampler is not None:
            sampler.saw_representative(class_key, interleaving)
        return False

    def reset(self) -> None:
        self._seen.clear()
        self.stats = PruneStats(name=self.name)
        if self.sampler is not None:
            self.sampler.clear()

    def apply(self, interleavings: Sequence[Interleaving]) -> List[Interleaving]:
        """Batch dedupe, keep-first.  Uses a fresh seen-set."""
        self.reset()
        return [il for il in interleavings if not self.is_redundant(il)]


class PrunerPipeline:
    """A set of pruners applied jointly: an interleaving is redundant when
    *any* pruner has already seen its class (greedy union of equivalences).

    ``tracer``/``metrics`` (see :mod:`repro.obs`) default to the shared
    null objects; an observed explorer swaps its own in, after which each
    pruner verdict emits a ``prune:<algorithm>`` span (with the class key
    as an attribute) and each merge bumps ``pruned.<algorithm>``.
    """

    def __init__(self, pruners: Iterable[Pruner]) -> None:
        self.pruners: List[Pruner] = list(pruners)
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS

    def enable_sampling(self, sample_k: int = 2, seed: int = 0) -> None:
        """Enable class sampling on every pruner (seeds derived per pruner)."""
        for index, pruner in enumerate(self.pruners):
            pruner.enable_sampling(sample_k=sample_k, seed=seed + index)

    def is_redundant(self, interleaving: Interleaving) -> bool:
        # Evaluate every pruner so each one's seen-set and stats stay
        # complete; redundancy is the OR across pruners.
        tracer = self.tracer
        metrics = self.metrics
        redundant = False
        for pruner in self.pruners:
            if tracer.enabled:
                span = tracer.begin("prune:" + pruner.name)
                verdict = pruner.is_redundant(interleaving)
                tracer.end(span, pruned=verdict, class_key=repr(pruner.last_key))
            else:
                verdict = pruner.is_redundant(interleaving)
            if verdict:
                redundant = True
                if metrics.enabled:
                    metrics.inc("pruned." + pruner.name)
        return redundant

    def apply(self, interleavings: Sequence[Interleaving]) -> List[Interleaving]:
        for pruner in self.pruners:
            pruner.reset()
        return [il for il in interleavings if not self.is_redundant(il)]

    def reset(self) -> None:
        for pruner in self.pruners:
            pruner.reset()

    def stats(self) -> Dict[str, PruneStats]:
        return {pruner.name: pruner.stats for pruner in self.pruners}
