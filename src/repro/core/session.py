"""The ER-pi session facade: ``Start() ... End()`` (paper Figure 7).

Usage mirrors the paper's higher-order functions::

    erpi = ErPi(cluster)
    erpi.start()                      # proxies RDL + sync functions
    ... application workload ...      # first (recording) run
    report = erpi.end(
        assertions=[assert_convergence()],
        cross_checks=[StableStateAcrossInterleavings("B")],
    )                                 # generate -> prune -> replay -> test

``start`` checkpoints the replicas *before* the workload, so every replayed
interleaving starts from the pristine pre-workload state; ``end`` removes
the proxies, builds the explorer from the recorded events plus any
constraints, replays every surviving interleaving and evaluates both the
per-interleaving assertions and the cross-interleaving checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.assertions import CrossInterleavingCheck
from repro.core.constraints import (
    Constraint,
    load_constraints_dir,
    pruners_from,
    spec_groups_from,
)
from repro.core.errors import RecordingError, ResourceExhausted
from repro.core.events import Event
from repro.core.explorers import DEFAULT_CAP, ERPiExplorer, ExplorationResult
from repro.core.interleavings import GroupingResult
from repro.core.pruning import (
    DPORPruner,
    Pruner,
    ReadScopedPruner,
    ReplicaSpecificPruner,
    StateMemoPruner,
    event_footprint,
)
from repro.core.replay import (
    Assertion,
    InterleavingOutcome,
    LockSteppedExecutor,
    ReplayEngine,
    SequentialExecutor,
)
from repro.core.sanitizer import Sanitizer, SanitizerReport
from repro.datalog.store import InterleavingStore
from repro.faults.plan import FaultPlan
from repro.faults.quarantine import QuarantinedReplay
from repro.net.cluster import Cluster
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.proxy.recorder import EventRecorder


@dataclass
class SessionReport:
    """Everything ER-pi learned from one Start/End window."""

    events: Tuple[Event, ...]
    grouping: GroupingResult
    explored: int
    outcomes: List[InterleavingOutcome]
    violations: List[Tuple[int, str]]  # (outcome index, message)
    cross_violations: List[Tuple[str, str]]  # (check name, message)
    pruning_stats: Dict[str, int]
    sanitizer: Optional[SanitizerReport] = None
    #: Fault events injected by the session's FaultPlan (empty without one).
    fault_events: Tuple[Event, ...] = ()
    #: Replays captured by the quarantine path instead of completing.
    quarantined: List[QuarantinedReplay] = field(default_factory=list)

    @property
    def violated(self) -> bool:
        return bool(self.violations) or bool(self.cross_violations)

    @property
    def raw_space(self) -> int:
        return self.grouping.raw_space

    def summary(self) -> str:
        lines = [
            f"events recorded: {len(self.events)} "
            f"(raw space {self.raw_space:,} interleavings)",
            f"grouped units: {self.grouping.unit_count} "
            f"(grouped space {self.grouping.grouped_space:,})",
            f"interleavings replayed: {self.explored}",
            f"assertion violations: {len(self.violations)}",
            f"cross-interleaving violations: {len(self.cross_violations)}",
        ]
        if self.fault_events:
            lines.append(f"fault events injected: {len(self.fault_events)}")
        if self.quarantined:
            lines.append(f"quarantined replays: {len(self.quarantined)}")
        for name, pruned in sorted(self.pruning_stats.items()):
            lines.append(f"  pruned by {name}: {pruned:,}")
        if self.sanitizer is not None:
            lines.append(self.sanitizer.summary())
        return "\n".join(lines)


def persist_exploration(
    store: InterleavingStore,
    result: ExplorationResult,
    metrics: Optional[Any] = None,
    tracer: Optional[Any] = None,
) -> Dict[str, int]:
    """Mirror a hunt's :class:`ExplorationResult` into ``store``.

    The process-backed parallel explorer commits a per-interleaving verdict
    map during its shard merge (``result.verdicts``); persisting that map
    turns the merge into Datalog facts — ``interleaving``/``explored``
    (plus ``quarantined`` with the error type) — so the soundness of the
    merge can be audited with the same queries as a serial session.
    Merged observability shards follow via their own persist hooks when a
    ``metrics`` registry / ``tracer`` is supplied.

    A coordinated hunt additionally carries ``result.coordination``; its
    shard-lease lifecycle lands as ``lease`` facts and any degradation step
    as a ``degraded`` fact, so "the hunt recovered from a crash" (or "fell
    back to in-process leases") is auditable from the same program as the
    verdicts it recovered.

    Returns per-verdict fact counts (``{"ok": ..., "violation": ...,
    "quarantined": ...}``) for callers that assert on the mirror.
    """
    counts: Dict[str, int] = {"ok": 0, "violation": 0, "quarantined": 0}
    coordination = getattr(result, "coordination", None)
    if coordination:
        for slot, attempt, status in coordination.get("lease_events", ()):
            store.persist_lease(slot, attempt, status)
        if coordination.get("degraded"):
            reason = coordination.get("degraded_reason") or "unknown"
            component, _, detail = reason.partition(": ")
            store.persist_degraded(component, detail or reason)
    if result.verdicts:
        error_types = {
            "|".join(q.interleaving): q.error_type for q in result.quarantined
        }
        for il_key, verdict in result.verdicts.items():
            event_ids = il_key.split("|") if il_key else []
            il_id = store.persist_interleaving(event_ids)
            if verdict == "quarantine":
                # The store schema spells the verdict like the session loop.
                store.mark_explored(il_id, "quarantined")
                store.persist_quarantine(
                    il_id, error_types.get(il_key, "unknown")
                )
                counts["quarantined"] += 1
            else:
                store.mark_explored(il_id, verdict)
                counts[verdict] = counts.get(verdict, 0) + 1
    if metrics is not None and getattr(metrics, "enabled", False):
        metrics.persist(store)
    if tracer is not None and getattr(tracer, "enabled", False):
        tracer.persist(store)
    return counts


class ErPi:
    """One integration-testing session over a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        replica_scope: Optional[str] = None,
        read_scoped: bool = False,
        constraints_dir: Optional[str] = None,
        persist: bool = False,
        lock_stepped: bool = False,
        read_methods: Optional[Sequence[str]] = None,
        prefix_cache: bool = False,
        memo: bool = False,
        dpor: bool = False,
        sanitize: Optional[float] = None,
        sanitize_sample_k: int = 2,
        sanitize_seed: int = 0,
        faults: Optional[FaultPlan] = None,
        replay_timeout_s: Optional[float] = None,
        trace: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        """``replica_scope`` enables Algorithm-2 pruning for that replica
        (paper: pass the replica id to the Start/End higher-order functions);
        ``read_scoped`` narrows it further to the replica's final read.
        ``persist`` mirrors interleavings into the Datalog store.
        ``lock_stepped`` replays with one worker thread per replica ordered
        through the Redis-backed distributed lock (the paper's cross-machine
        deployment) instead of the fast in-line executor.
        ``read_methods`` extends the recorder's READ classification with the
        custom library's query methods (defaults cover the built-in
        subjects).
        ``prefix_cache`` enables incremental prefix-reuse replay: each
        replay restores the longest already-executed event-id prefix and
        re-executes only the suffix.  Results are identical either way; the
        engine falls back to fresh full replays whenever reuse would be
        unsound (lock-stepped executor, nondeterministic network, or a
        subject without copy-on-write state views).
        ``memo`` enables canonical state-hash memoization
        (:class:`~repro.core.pruning.semantic.StateMemoPruner`): replays
        whose stitched outcome is already known from an equal intermediate
        digest are pruned.  ``dpor`` enables sleep-set pruning
        (:class:`~repro.core.pruning.semantic.DPORPruner`): permutations
        that only reorder independent events are skipped.  Both are
        sound-or-off — they stay disabled (and say why in
        ``disabled_reason``) when a subject lacks ``canonical_state()`` or
        the executor is not deterministic, and with ``persist=True`` their
        prunes land as ``memo``/``footprint`` Datalog facts.
        ``sanitize`` enables the differential soundness sanitizer: it is the
        probability (0..1) that a cache-accelerated replay is shadow-replayed
        from scratch and diffed; independently, every pruner's equivalence
        classes are sampled (``sanitize_sample_k`` skipped members each) and
        differentially replayed at :meth:`end`.  Divergences land in the
        report (and, with ``persist=True``, as ``divergence`` Datalog
        facts).
        ``faults`` attaches a :class:`~repro.faults.plan.FaultPlan`: its
        crash/recover (and partition/heal) events are compiled against the
        recorded events at :meth:`end` and interleaved exhaustively with
        them, constrained so every explored schedule is valid (crash before
        its recover, no double-crash).
        ``replay_timeout_s`` is the per-replay wall-clock watchdog: slow or
        wedged replays raise and are quarantined instead of hanging the
        hunt.  It also replaces the lock-stepped executor's default 30 s
        stuck-replica timeout.
        ``trace`` / ``metrics`` attach a :class:`~repro.obs.tracer.Tracer`
        and a :class:`~repro.obs.metrics.MetricsRegistry` to the whole
        pipeline (engine, explorer, pruners); with ``persist=True`` their
        contents are mirrored into the Datalog store as ``span``/``metric``
        facts at :meth:`end`."""
        self.cluster = cluster
        self.replica_scope = replica_scope
        self.read_scoped = read_scoped
        self.constraints_dir = constraints_dir
        self.persist = persist
        self.store: Optional[InterleavingStore] = InterleavingStore() if persist else None
        self._recorder: Optional[EventRecorder] = None
        self._read_methods = read_methods
        self.faults = faults
        self.replay_timeout_s = replay_timeout_s
        if lock_stepped:
            executor: Any = (
                LockSteppedExecutor(timeout_s=replay_timeout_s)
                if replay_timeout_s is not None
                else LockSteppedExecutor()
            )
        elif replay_timeout_s is not None:
            executor = SequentialExecutor(timeout_s=replay_timeout_s)
        else:
            executor = None
        self.tracer = trace if trace is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._engine = ReplayEngine(cluster, executor)
        self._engine.tracer = self.tracer
        self._engine.metrics = self.metrics
        if prefix_cache:
            self._engine.enable_prefix_cache()
        self.memo = memo
        self.dpor = dpor
        self._memo_pruner: Optional[StateMemoPruner] = None
        self._dpor_pruner: Optional[DPORPruner] = None
        self._sanitizer: Optional[Sanitizer] = None
        if sanitize is not None:
            self._sanitizer = Sanitizer(
                rate=sanitize,
                sample_k=sanitize_sample_k,
                seed=sanitize_seed,
                store=self.store,
            )
            self._sanitizer.watch_engine(self._engine)
        self._extra_constraints: List[Constraint] = []

    # ------------------------------------------------------------- markers

    def start(self) -> None:
        """ER-pi.Start(): checkpoint the replicas and begin recording."""
        if self._recorder is not None:
            raise RecordingError("session already started")
        self._engine.checkpoint()
        read_methods = None
        if self._read_methods is not None:
            from repro.proxy.recorder import DEFAULT_READ_METHODS

            read_methods = set(DEFAULT_READ_METHODS) | set(self._read_methods)
        self._recorder = EventRecorder(self.cluster, read_methods=read_methods)
        self._recorder.start()

    @property
    def recorded_events(self) -> Tuple[Event, ...]:
        """The events captured so far in the current recording window
        (useful for deriving constraints before calling :meth:`end`)."""
        if self._recorder is None:
            return ()
        return tuple(self._recorder.events)

    def export_datalog(self, path: Optional[str] = None) -> str:
        """Render the persisted interleavings + pruning rules as a Datalog
        program (paper section 5.1: ER-pi generates the Souffle dialect).

        Requires ``persist=True``.  Returns the program text; also writes it
        to ``path`` when given.
        """
        if self.store is None:
            raise RecordingError("export requires a session with persist=True")
        from repro.datalog.export import export_program

        text = export_program(self.store)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def add_constraint(self, constraint: Constraint) -> None:
        """Programmatic equivalent of dropping a JSON constraint file."""
        self._extra_constraints.append(constraint)

    def end(
        self,
        assertions: Sequence[Assertion] = (),
        cross_checks: Sequence[CrossInterleavingCheck] = (),
        cap: int = DEFAULT_CAP,
        order: str = "relocation",
        extra_pruners: Sequence[Pruner] = (),
        stop_on_violation: bool = False,
        keep_outcomes: bool = True,
    ) -> SessionReport:
        """ER-pi.End(tests...): replay every surviving interleaving."""
        if self._recorder is None:
            raise RecordingError("session was not started")
        events = tuple(self._recorder.stop())
        self._recorder = None

        # Compile the fault plan (if any) against the recorded events: the
        # fault events join the schedule and are permuted like any other,
        # within the plan's validity constraints.
        fault_events: Tuple[Event, ...] = ()
        order_constraints: Tuple[Tuple[str, str], ...] = ()
        schedule_events = events
        if self.faults is not None and not self.faults.is_empty():
            if self.tracer.enabled:
                fspan = self.tracer.begin("fault-compile")
                compiled = self.faults.compile(events)
                self.tracer.end(fspan, fault_events=len(compiled.fault_events))
            else:
                compiled = self.faults.compile(events)
            schedule_events = compiled.events
            fault_events = compiled.fault_events
            order_constraints = compiled.order_constraints

        constraints = list(self._extra_constraints)
        if self.constraints_dir:
            constraints.extend(load_constraints_dir(self.constraints_dir))

        pruners: List[Pruner] = list(extra_pruners)
        if self.replica_scope:
            if self.read_scoped:
                pruners.append(ReadScopedPruner(self.replica_scope))
            else:
                pruners.append(ReplicaSpecificPruner(self.replica_scope))
        pruners.extend(pruners_from(constraints))
        self._dpor_pruner = DPORPruner() if self.dpor else None
        self._memo_pruner = StateMemoPruner() if self.memo else None
        if self._dpor_pruner is not None:
            pruners.append(self._dpor_pruner)
        if self._memo_pruner is not None:
            pruners.append(self._memo_pruner)

        explorer = ERPiExplorer(
            schedule_events,
            spec_groups=spec_groups_from(constraints),
            pruners=pruners,
            order=order,
        )
        explorer.order_constraints = order_constraints
        explorer.tracer = self.tracer
        explorer.metrics = self.metrics
        if fault_events and self.faults is not None:
            explorer.fault_plan_description = self.faults.describe()
        if self._sanitizer is not None:
            self._sanitizer.reset_pruners()
            self._sanitizer.watch_pruners(explorer.pipeline.pruners)
            explorer.audit_pruners.append(
                self._sanitizer.grouping_auditor(schedule_events, explorer.spec_groups)
            )
        # Arm the semantic pruners (sound-or-off: bind refuses and records
        # why when the engine or a subject cannot support them).
        if self._dpor_pruner is not None:
            self._dpor_pruner.bind((self._engine,), assertions)
        if self._memo_pruner is not None:
            self._memo_pruner.bind(
                (self._engine,), assertions, meter=explorer.meter
            )

        outcomes: List[InterleavingOutcome] = []
        violations: List[Tuple[int, str]] = []
        quarantined: List[QuarantinedReplay] = []
        explored = 0
        tracer = self.tracer
        metrics = self.metrics
        root = tracer.begin("explore") if tracer.enabled else None
        candidates = explorer.candidates()
        try:
            # Cap checked before pulling (see Explorer.explore): a capped
            # session never generates candidates it will not replay.
            while explored < cap:
                if tracer.enabled:
                    gspan = tracer.begin("generate")
                    try:
                        interleaving = next(candidates, None)
                    except BaseException as exc:
                        tracer.end(gspan, error=type(exc).__name__)
                        raise
                    tracer.end(gspan, exhausted=interleaving is None)
                else:
                    interleaving = next(candidates, None)
                if interleaving is None:
                    break
                try:
                    outcome = self._engine.replay(interleaving, assertions)
                except ResourceExhausted:
                    raise
                except Exception as exc:
                    # Quarantine: capture the wreckage, reset the cluster, and
                    # keep exploring instead of killing the session.
                    if tracer.enabled:
                        qspan = tracer.begin("quarantine")
                        quarantined.append(explorer._quarantine(interleaving, exc))
                        tracer.end(qspan, error_type=type(exc).__name__)
                    else:
                        quarantined.append(explorer._quarantine(interleaving, exc))
                    if metrics.enabled:
                        metrics.inc("interleavings.quarantined")
                    explored += 1
                    self._engine.restore()
                    if self.store is not None:
                        il_id = self.store.persist_interleaving(
                            [event.event_id for event in interleaving]
                        )
                        self.store.mark_explored(il_id, "quarantined")
                        self.store.persist_quarantine(il_id, type(exc).__name__)
                    continue
                explored += 1
                if metrics.enabled:
                    metrics.inc("interleavings.replayed")
                if self.store is not None:
                    il_id = self.store.persist_interleaving(
                        [event.event_id for event in interleaving]
                    )
                    self.store.mark_explored(
                        il_id, "violation" if outcome.violated else "ok"
                    )
                if keep_outcomes or outcome.violated:
                    outcomes.append(outcome)
                for message in outcome.violations:
                    violations.append((len(outcomes) - 1, message))
                if outcome.violated and stop_on_violation:
                    break
        finally:
            if root is not None:
                tracer.end(root, mode="erpi", explored=explored)

        cross_violations: List[Tuple[str, str]] = []
        for check in cross_checks:
            message = check.evaluate(outcomes)
            if message is not None:
                cross_violations.append((check.name, message))

        # Differentially replay the sampled equivalence classes before the
        # cluster is reset (replay_fresh restores the checkpoint itself).
        sanitizer_report: Optional[SanitizerReport] = None
        if self._sanitizer is not None:
            sanitizer_report = self._sanitizer.finish(self._engine)

        # Reset the cluster to the pre-workload checkpoint so the session can
        # be rerun (or another session started) from a clean slate.
        self._engine.restore()

        pruning_stats: Dict[str, int] = {
            "event_grouping": explorer.grouping.raw_space
            - explorer.grouping.grouped_space
        }
        for name, stats in explorer.pipeline.stats().items():
            pruning_stats[name] = stats.pruned

        if self.store is not None:
            for event in schedule_events:
                self.store.persist_event(
                    event.event_id, event.replica_id, event.kind.value, event.op_name
                )
            for event in fault_events:
                self.store.persist_fault(
                    event.event_id, event.replica_id, event.kind.value
                )
            for first_id, second_id in explorer.grouping.grouped_pairs:
                self.store.persist_sync_pair(first_id, second_id)
            # Semantic-pruning audit trail: each memo prune carries the
            # digest that justified it, each DPOR prune the footprint-model
            # entries behind the independence claim.
            if self._memo_pruner is not None:
                for digest, il_key in self._memo_pruner.memo_log:
                    il_id = self.store.persist_interleaving(il_key.split("|"))
                    self.store.mark_pruned(il_id, "state_memo")
                    self.store.persist_memo(digest, il_id)
            if self._dpor_pruner is not None:
                by_id = {event.event_id: event for event in schedule_events}
                for il_key in self._dpor_pruner.prune_log:
                    event_ids = il_key.split("|")
                    il_id = self.store.persist_interleaving(event_ids)
                    self.store.mark_pruned(il_id, "dpor")
                    for event_id in event_ids:
                        event = by_id.get(event_id)
                        if event is None:
                            continue
                        for key, mode in event_footprint(event):
                            self.store.persist_footprint(
                                il_id, event_id, mode, key
                            )
            # Observability telemetry becomes queryable alongside the
            # interleavings it describes (span/metric facts).
            if self.tracer.enabled:
                self.tracer.persist(self.store)
            if self.metrics.enabled:
                self.metrics.persist(self.store)

        return SessionReport(
            events=schedule_events,
            grouping=explorer.grouping,
            explored=explored,
            outcomes=outcomes,
            violations=violations,
            cross_violations=cross_violations,
            pruning_stats=pruning_stats,
            sanitizer=sanitizer_report,
            fault_events=fault_events,
            quarantined=quarantined,
        )
