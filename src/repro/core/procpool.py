"""Shared-nothing multiprocess exploration with prefix-shard scheduling.

:class:`~repro.core.explorers.ParallelExplorer` fans replays out over a
``ThreadPoolExecutor``, which the GIL serialises on pure-CPU subjects (the
``parallel4`` bench arm runs *slower* than the serial prefix-cache arm).
:class:`ProcessParallelExplorer` replaces the pool with ``multiprocessing``
workers that share **nothing**: each worker rebuilds its own cluster,
:class:`~repro.core.replay.ReplayEngine`, delta-trie prefix cache, pruner
pipeline and per-worker metrics registries from a picklable
:class:`WorkerTask` spec, so replays proceed on separate cores with zero
cross-process synchronisation on the hot path.

Determinism is preserved without shipping candidates at all:

* every worker walks the **full** candidate stream's positions locally.
  Candidate generation — grouping, enumeration order, validity filtering
  and the pruner pipeline — is a deterministic function of the recorded
  events, so all workers (and a serial run) agree on every candidate
  index.  With no pruners attached, the explorer's *sharded* fast path
  (:meth:`~repro.core.explorers.Explorer.sharded_candidates`) derives each
  candidate's shard key from the leading units of the permutation and
  skips foreign candidates without ever flattening them — a worker
  materialises only its own shards, while stream accounting (meter
  charges, generated counts, budget-crash positions) stays identical to
  the full stream;
* a worker *replays* only the candidates its **prefix shard** owns: the
  shard key is the first ``prefix_len`` event ids of the interleaving, and
  :class:`PrefixShardRouter` assigns keys to workers round-robin in order
  of first appearance (a deterministic rule — unlike ``hash()``, which is
  randomised per process).  Minimal-change orders (SJT) mutate the prefix
  slowly, so consecutive candidates usually land on the same worker and its
  prefix cache keeps its high hit rate;
* verdicts stream back as **columnar frames** (:class:`AdaptiveBatcher`):
  event ids are interned as positions into the shared schedule — both
  sides derive the identical table independently — verdict records are
  flat parallel arrays, and only violations/quarantines/crashes carry a
  Python object, with violation outcomes shipped as pickle bytes that the
  parent deserialises lazily at commit time (duplicate deliveries from a
  re-leased slot are deduplicated *before* they are ever unpickled).
  Frames size themselves adaptively — start small for low latency, double
  on every full flush up to ``batch_size``, and flush early on an idle
  deadline so a slow shard's verdicts (and a coordinator's watermark)
  never sit in a half-full buffer.  The parent **commits records strictly
  in candidate order**, so the reported first violation and the explored
  count are bit-for-bit identical to a serial hunt.

Each worker slot gets its **own one-writer pipe** to the parent rather than
a shared ``multiprocessing.Queue``.  The shared queue serialises writers
through one cross-process lock held by a feeder thread — a worker SIGKILLed
mid-flush dies holding it and every surviving (and replacement) worker then
deadlocks on its next send.  With per-slot pipes there is no shared lock to
poison, a dead worker's half-written frame confines the damage to its own
channel, and the kernel closing the write end turns worker death into an
explicit EOF the parent observes instead of a silent hang — the property
the crash-recovery coordinator (:mod:`repro.core.coordinator`) builds its
re-lease protocol on.

The exploration identity ``generated == pruned + replayed + quarantined +
discarded`` survives the shard merge: stream-side counters (generated /
pruned / invalid) are taken from the worker that enumerated furthest (its
stream is a superset of every other worker's, and of the committed run),
replay-side counters are summed across workers, the parent counts
replayed/quarantined itself at commit time, and ``discarded`` is defined as
``furthest_yields - committed`` (non-negative because the owner of the last
committed candidate enumerated at least that far).

Worker-local prefix caches stay sound for the same reason one engine's
cache is: the cache is only active when every replica of that worker's own
cluster supports state views (the sound-or-off rule enforced by
``ReplayEngine.prefix_cache_active()``), and no snapshot ever crosses a
process boundary.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import pickle
import signal
import time
import traceback
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ResourceExhausted
from repro.core.explorers import DEFAULT_CAP, ExplorationResult, Explorer
from repro.core.interleavings import Interleaving
from repro.core.replay import Assertion, InterleavingOutcome, ReplayEngine
from repro.faults.quarantine import QuarantinedReplay
from repro.obs.metrics import MetricsRegistry

# ------------------------------------------------------------------ sharding


class PrefixShardRouter:
    """Deterministic prefix-shard ownership for one candidate stream.

    The shard key of an interleaving is the tuple of its first
    ``prefix_len`` event ids.  Keys are assigned to workers round-robin in
    order of **first appearance** in the stream; because every worker
    enumerates the identical stream, every worker derives the identical
    assignment without any coordination.  (Hashing the key would be simpler
    but ``hash()`` of strings is salted per process.)
    """

    def __init__(self, workers: int, prefix_len: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if prefix_len < 1:
            raise ValueError("prefix_len must be >= 1")
        self.workers = workers
        self.prefix_len = prefix_len
        self._owners: Dict[Tuple[str, ...], int] = {}
        self._next = 0

    def owner_of_key(self, key: Tuple[str, ...]) -> int:
        owner = self._owners.get(key)
        if owner is None:
            owner = self._owners[key] = self._next % self.workers
            self._next += 1
        return owner

    def owner(self, interleaving: Interleaving) -> int:
        return self.owner_of_key(
            tuple(event.event_id for event in interleaving[: self.prefix_len])
        )

    @property
    def shards(self) -> int:
        return len(self._owners)


def auto_prefix_len(stream_width: int, workers: int) -> int:
    """Shard-key length balancing granularity against cache locality.

    One leading unit gives ``stream_width`` shards; when that is not at
    least twice the worker count the shards are too coarse to balance, so
    the key grows to two units (``~width**2`` shards).
    """
    return 1 if stream_width >= 2 * workers else 2


def _stream_width(explorer: Explorer) -> int:
    grouping = getattr(explorer, "grouping", None)
    if grouping is not None:
        return max(1, len(grouping.units))
    return max(1, len(explorer.events))


# -------------------------------------------------------------- worker tasks


class WorkerTask:
    """A picklable recipe for rebuilding one worker's exploration stack.

    ``build()`` runs **inside** the worker process and must return
    ``(explorer, engine, assertions, audit_events)`` — a fresh explorer over
    the recorded schedule, a checkpointed :class:`ReplayEngine` over a fresh
    cluster, the scenario's assertions, and the unfaulted recorded events
    (the grouping auditor's input when sanitizing).  Implementations must
    not capture module-level state: everything a worker needs is derived
    from the task's own (picklable) fields, which keeps the bootstrap safe
    under the ``spawn`` start method as well as ``fork``.
    """

    def build(self) -> Tuple[Explorer, ReplayEngine, Sequence[Assertion], tuple]:
        raise NotImplementedError


@dataclass(frozen=True)
class ScenarioWorkerTask(WorkerTask):
    """Rebuild a registered bug scenario's hunt stack by name."""

    scenario_name: str
    mode: str = "erpi"
    seed: int = 0
    fixed: bool = False
    faults: bool = False
    replay_timeout_s: Optional[float] = None
    memo: bool = False
    dpor: bool = False

    def build(self) -> Tuple[Explorer, ReplayEngine, Sequence[Assertion], tuple]:
        # Imports are deferred so pickling the task never drags the bug
        # registry (or a half-initialised module under spawn) along with it.
        from repro.bench.harness import make_explorer, record_scenario
        from repro.bugs import scenario
        from repro.core.replay import SequentialExecutor

        sc = scenario(self.scenario_name)
        recorded = record_scenario(sc, fixed=self.fixed)
        schedule = None
        order_constraints: Tuple[Tuple[str, str], ...] = ()
        fault_plan = None
        if self.faults:
            fault_plan = sc.fault_plan()
            if fault_plan is None or fault_plan.is_empty():
                raise ValueError(
                    f"{sc.name} declares no fault plan; hunt with faults=False"
                )
            compiled = fault_plan.compile(recorded.events)
            schedule = compiled.events
            order_constraints = compiled.order_constraints
        if self.replay_timeout_s is not None:
            recorded.engine.executor = SequentialExecutor(
                timeout_s=self.replay_timeout_s
            )
        explorer = make_explorer(
            recorded, self.mode, seed=self.seed, events=schedule,
            memo=self.memo, dpor=self.dpor,
            # A stream-time memo prune driven by a worker-local table would
            # desynchronise candidate indices across workers; the memo is
            # consulted at replay time instead (see _run_worker).
            memo_in_stream=False,
        )
        explorer.order_constraints = order_constraints
        if fault_plan is not None:
            explorer.fault_plan_description = fault_plan.describe()
        return explorer, recorded.engine, sc.make_assertions(), recorded.events


@dataclass(frozen=True)
class CallableWorkerTask(WorkerTask):
    """Rebuild from a module-level factory (the bench harness's spec).

    ``factory`` must be importable by reference (a plain module-level
    function), so the task pickles as a name, not as captured state.
    """

    factory: Any
    args: Tuple[Any, ...] = ()

    def build(self) -> Tuple[Explorer, ReplayEngine, Sequence[Assertion], tuple]:
        return self.factory(*self.args)


# ------------------------------------------------------------- columnar IPC

#: Verdict kind codes for columnar frames.  Codes below ``_KIND_VIOLATION``
#: are fully described by (index, kind, event positions); codes at or above
#: it carry exactly one entry in the frame's ``other`` list.
_KIND_OK = 0
_KIND_PRUNED = 1
_KIND_VIOLATION = 2
_KIND_QUARANTINE = 3
_KIND_CRASHED = 4

#: Distinguishes "stream exhausted" from "foreign-shard position" in the
#: sharded candidate stream, where ``None`` is a legitimate yield.
_EXHAUSTED = object()


def _send_counted(conn, obj: Any) -> int:
    """Send one frame and return its wire size in bytes.

    ``Connection.send`` pickles internally but never reveals the size, so
    frames whose bytes we account (everything a worker ships except the
    final flush) are pickled here and pushed through ``send_bytes`` — the
    receiving ``Connection.recv`` unpickles either form identically.
    """
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(data)
    return len(data)


class AdaptiveBatcher:
    """Columnar verdict buffer with adaptive sizing and an idle deadline.

    Records accumulate into flat parallel arrays — candidate indices
    (``array('I')``), kind codes (bytes), concatenated event *positions*
    with per-record lengths (``array('I')`` twice) — plus an ``other`` list
    holding the one payload object of each violation/quarantine/crash.
    A frame of N ok-verdicts therefore pickles as a handful of contiguous
    buffers instead of N tuples of N-string event-id tuples.

    Sizing is adaptive: the batch starts small (low first-verdict latency),
    doubles every time it fills (amortising per-frame cost under load) and
    is capped at the configured ``batch_size``.  ``due()`` reports when a
    partial buffer has waited at least ``idle_flush_s`` since the last
    flush, so trailing verdicts ship promptly even when replays are slow.
    The clock is injectable for deterministic tests.
    """

    __slots__ = ("cap", "size", "idle_flush_s", "_clock", "_last_flush",
                 "indices", "kinds", "ev", "ev_lens", "other")

    def __init__(
        self,
        cap: int,
        idle_flush_s: float = 0.05,
        clock: Optional[Callable[[], float]] = None,
        min_batch: int = 8,
    ) -> None:
        self.cap = max(1, cap)
        self.size = min(max(1, min_batch), self.cap)
        self.idle_flush_s = idle_flush_s
        self._clock = clock or time.monotonic
        self._last_flush = self._clock()
        self._reset()

    def _reset(self) -> None:
        self.indices = array("I")
        self.kinds = bytearray()
        self.ev = array("I")
        self.ev_lens = array("I")
        self.other: List[Any] = []

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def full(self) -> bool:
        return len(self.indices) >= self.size

    def add(self, index: int, kind: int,
            ev_positions: Optional[Iterable[int]], other: Any = None) -> None:
        self.indices.append(index)
        self.kinds.append(kind)
        if ev_positions is not None:
            before = len(self.ev)
            self.ev.extend(ev_positions)
            self.ev_lens.append(len(self.ev) - before)
        else:
            self.ev_lens.append(0)
        if kind >= _KIND_VIOLATION:
            self.other.append(other)

    def due(self) -> bool:
        """True when a non-empty partial buffer has idled past the deadline."""
        if not self.indices:
            return False
        return self._clock() - self._last_flush >= self.idle_flush_s

    def flush(self, grow: bool = False):
        """Detach and return the frame payload (``None`` when empty).

        ``grow=True`` — used when flushing because the buffer filled —
        doubles the target size up to the cap; deadline flushes pass False
        so a slow trickle of verdicts keeps its low-latency small batches.
        """
        self._last_flush = self._clock()
        if not self.indices:
            return None
        frame = (self.indices, bytes(self.kinds), self.ev, self.ev_lens,
                 self.other)
        self._reset()
        if grow:
            self.size = min(self.size * 2, self.cap)
        return frame


# ------------------------------------------------------------ worker process


@dataclass(frozen=True)
class _WorkerConfig:
    worker_index: int
    workers: int
    cap: int
    stop_on_violation: bool
    prefix_cache: bool
    collect_metrics: bool
    batch_size: int
    prefix_len: Optional[int]
    sanitize: Optional[float]
    sanitize_sample_k: int
    seed: int
    #: How many candidates between checks of the shared stop flag (each
    #: check is a semaphore acquisition — too hot to pay per candidate).
    stop_stride: int = 32
    #: Candidates below this global index are already committed (a resumed
    #: or re-leased hunt): enumerate them for stream determinism, but skip
    #: the replay — the parent has their verdicts journaled.
    skip_below: int = 0
    #: Send ``("heartbeat", widx, yields)`` at least this often (seconds)
    #: so the coordinator can renew this worker's shard lease.  ``None``
    #: disables heartbeats (plain uncoordinated pools).
    heartbeat_interval_s: Optional[float] = None
    #: Which incarnation of this slot the worker is (1 = original, 2+ =
    #: re-leased replacements).  Stamped into the worker's metrics payload
    #: epochs so the parent merges each (slot, attempt) at most once even
    #: when a dead predecessor's partial flush and its replacement's full
    #: flush both reach the merge.
    attempt: int = 1
    #: Ship a partial columnar frame once it has idled this long (seconds)
    #: since the previous flush, so trailing verdicts — and the coordinated
    #: watermark they advance — never wait on a buffer filling up.
    idle_flush_s: float = 0.05
    #: Testing/CI knob: sleep this long before each owned replay to force
    #: deterministic shard skew (exercises work stealing).  Applied only to
    #: a slot's first incarnation — stolen-shard replacements run at full
    #: speed, which is the point of stealing.
    throttle_s: Optional[float] = None


def _worker_main(task, config, conn, stop_event, go_event) -> None:
    """Entry point of one exploration worker process.

    ``conn`` is this slot's private send-end pipe: all frames — ready,
    batches, heartbeats, the final flush, errors — go through it, and the
    kernel closing it on process exit is the parent's EOF death signal.
    """
    # The parent owns shutdown: a Ctrl-C lands there, which sets the stop
    # flag and drains; workers must not die mid-send from the same SIGINT.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    widx = config.worker_index
    try:
        runtime = _build_worker_runtime(task, config)
        conn.send(("ready", widx))
        go_event.wait()
        _run_worker(runtime, config, conn, stop_event)
    except BaseException:
        try:
            conn.send(("error", widx, traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already torn down
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover - already closed
            pass


class _WorkerRuntime:
    __slots__ = ("explorer", "engine", "assertions", "sanitizer", "router",
                 "stream_metrics", "replay_metrics", "memo")

    def __init__(self, explorer, engine, assertions, sanitizer, router,
                 stream_metrics, replay_metrics, memo=None) -> None:
        self.explorer = explorer
        self.engine = engine
        self.assertions = assertions
        self.sanitizer = sanitizer
        self.router = router
        self.stream_metrics = stream_metrics
        self.replay_metrics = replay_metrics
        self.memo = memo


def _build_worker_runtime(task, config: _WorkerConfig) -> _WorkerRuntime:
    from repro.core.explorers import ERPiExplorer
    from repro.core.sanitizer import Sanitizer

    explorer, engine, assertions, audit_events = task.build()
    stream_metrics = replay_metrics = None
    if config.collect_metrics:
        # Two shards per worker: the explorer writes stream-side counters
        # (generated / pruned / invalid), the engine writes replay-side ones
        # (cache hits, messages, durations).  The parent merges them under
        # different rules — see ProcessParallelExplorer._merge_metrics.
        stream_metrics = MetricsRegistry()
        replay_metrics = MetricsRegistry()
        explorer.metrics = stream_metrics
        engine.metrics = replay_metrics
    if config.prefix_cache and engine.prefix_cache is None:
        # Charge retained snapshots to the meter only when a budget is
        # actually armed: the deep footprint walk roughly doubles the cost
        # of a cached replay, and the default unlimited meter enforces
        # nothing the walk could trip.
        meter = explorer.meter if explorer.meter.budget_bytes is not None else None
        engine.enable_prefix_cache(meter=meter)
    sanitizer = None
    if config.sanitize is not None:
        sanitizer = Sanitizer(
            rate=config.sanitize,
            sample_k=config.sanitize_sample_k,
            seed=config.seed,
        )
        sanitizer.watch_engine(engine)
        if isinstance(explorer, ERPiExplorer):
            sanitizer.watch_pruners(explorer.pipeline.pruners)
            explorer.audit_pruners.append(
                sanitizer.grouping_auditor(audit_events, explorer.spec_groups)
            )
    # Bind the semantic pruners exactly as a serial explore() would (the
    # worker loop pulls candidates() directly, bypassing explore()).
    explorer.bind_semantic((engine,), assertions)
    memo = getattr(explorer, "replay_memo", None)
    if memo is not None:
        memo.bind((engine,), assertions, meter=explorer.meter)
        if not memo.enabled:
            memo = None
    # Runtime write-set validation can disable the DPOR pruner, and a
    # disable observed by one worker but not another would desynchronise
    # the candidate streams.  The static footprint model is conservative on
    # its own; the validation hook stays a serial-path defence.
    engine.footprint_observer = None
    prefix_len = config.prefix_len or auto_prefix_len(
        _stream_width(explorer), config.workers
    )
    router = PrefixShardRouter(config.workers, prefix_len)
    return _WorkerRuntime(
        explorer, engine, assertions, sanitizer, router,
        stream_metrics, replay_metrics, memo=memo,
    )


def _run_worker(runtime: _WorkerRuntime, config: _WorkerConfig,
                conn, stop_event) -> None:
    widx = config.worker_index
    explorer = runtime.explorer
    engine = runtime.engine
    assertions = runtime.assertions
    # Sharded enumeration: the explorer yields owned candidates and ``None``
    # for foreign stream positions (which still consume an index).  The
    # ER-pi fast path skips flattening foreign permutations entirely; the
    # default falls back to generate-then-filter.
    candidates = explorer.sharded_candidates(runtime.router, widx)
    # Event-id interning table: both sides derive positions into the shared
    # schedule independently, so frames carry small ints instead of strings.
    eidx = {event.event_id: pos for pos, event in enumerate(explorer.events)}
    batcher = AdaptiveBatcher(config.batch_size, idle_flush_s=config.idle_flush_s)
    yields = 0
    materialized = 0
    ipc_bytes = 0
    crash_reason: Optional[str] = None
    stopped_on_own_violation = False
    heartbeat_s = config.heartbeat_interval_s
    throttle_s = config.throttle_s
    last_beat = time.monotonic()

    def ship(grow: bool) -> None:
        nonlocal ipc_bytes
        frame = batcher.flush(grow=grow)
        if frame is not None:
            ipc_bytes += _send_counted(conn, ("cbatch", widx, frame))

    def record(index: int, kind: int,
               positions: Optional[List[int]], other: Any = None) -> None:
        batcher.add(index, kind, positions, other)
        if batcher.full:
            ship(grow=True)

    try:
        # Mirrors the serial loop's check-before-pull cap semantics, so a
        # capped run's stream counters match a capped serial run exactly.
        while yields < config.cap:
            if yields % config.stop_stride == 0:
                if stop_event.is_set():
                    break
                if batcher.due():
                    ship(grow=False)
                if heartbeat_s is not None:
                    now = time.monotonic()
                    if now - last_beat >= heartbeat_s:
                        ipc_bytes += _send_counted(
                            conn, ("heartbeat", widx, yields))
                        last_beat = now
            try:
                interleaving = next(candidates, _EXHAUSTED)
            except ResourceExhausted as exc:
                crash_reason = str(exc)
                break
            if interleaving is _EXHAUSTED:
                break
            index = yields
            yields += 1
            if interleaving is None:
                # Foreign shard: the position is consumed (indices stay
                # aligned across workers) but nothing was materialised.
                continue
            materialized += 1
            if index < config.skip_below:
                # Already committed by the parent in a previous incarnation
                # of this hunt; re-replaying it would only produce a result
                # the parent will deduplicate away.
                continue
            if runtime.memo is not None and runtime.memo.is_redundant(interleaving):
                # Replay-time memo hit on an owned candidate: the stitched
                # outcome was clean, so ship a "pruned" verdict instead of
                # re-replaying.  (Stream-time pruning would shift candidate
                # indices, which must stay identical across workers.)
                record(index, _KIND_PRUNED,
                       [eidx[event.event_id] for event in interleaving])
                continue
            if throttle_s is not None:
                time.sleep(throttle_s)
            try:
                outcome = engine.replay(interleaving, assertions)
            except ResourceExhausted as exc:
                record(index, _KIND_CRASHED, None, other=str(exc))
                crash_reason = str(exc)
                break
            except Exception as exc:
                record(index, _KIND_QUARANTINE, None,
                       other=explorer._quarantine(interleaving, exc))
                engine.restore()
            else:
                positions = [eidx[event.event_id] for event in interleaving]
                if outcome.violated:
                    # Forcing .states happens inside __getstate__ at pickle
                    # time; shipping the whole outcome keeps the parent's
                    # result identical to a serial run's.  It rides the
                    # frame as pickle bytes the parent defers deserialising
                    # until (unless) this index actually commits.
                    record(index, _KIND_VIOLATION, positions,
                           other=pickle.dumps(
                               outcome, protocol=pickle.HIGHEST_PROTOCOL))
                    if config.stop_on_violation:
                        # This worker cannot contribute anything the parent
                        # will commit past its own first violation.
                        stopped_on_own_violation = True
                        break
                else:
                    record(index, _KIND_OK, positions)
            if batcher.due():
                ship(grow=False)
            if heartbeat_s is not None:
                # Replays dominate wall time; beat after each one so a slow
                # shard cannot silently outlive its lease.
                now = time.monotonic()
                if now - last_beat >= heartbeat_s:
                    ipc_bytes += _send_counted(conn, ("heartbeat", widx, yields))
                    last_beat = now
    except BaseException:
        # Anything unexpected (the replay loop's own bugs, a pickling
        # failure, SIGTERM-as-exception) must reach the parent through the
        # final flush: the parent treats "every worker flushed" as run
        # completion, so a silent partial exit would truncate the results
        # instead of failing them.
        if crash_reason is None:
            crash_reason = traceback.format_exc()
        raise
    finally:
        ship(grow=False)
        conn.send(("final", widx, _worker_flush(
            runtime, config, yields, crash_reason, stopped_on_own_violation,
            materialized, ipc_bytes,
        )))


def _worker_flush(runtime: _WorkerRuntime, config: _WorkerConfig, yields: int,
                  crash_reason: Optional[str], stopped: bool,
                  materialized: int, ipc_bytes: int) -> Dict[str, Any]:
    explorer = runtime.explorer
    engine = runtime.engine
    flush: Dict[str, Any] = {
        "yields": yields,
        "materialized": materialized,
        "ipc_bytes": ipc_bytes,
        "crash_reason": crash_reason,
        "stopped_on_violation": stopped,
        "pruning_stats": explorer._pruning_stats(),
        "fault_events": sum(1 for event in explorer.events if event.is_fault),
        "meter": dict(explorer.meter.by_category),
        "stream": None,
        "replay": None,
        "cache": None,
        "sanitizer": None,
    }
    if runtime.stream_metrics is not None:
        widx = config.worker_index
        flush["stream"] = runtime.stream_metrics.to_payload(
            epoch=("stream", widx, config.attempt)
        )
        flush["replay"] = runtime.replay_metrics.to_payload(
            epoch=("replay", widx, config.attempt)
        )
    cache = engine.prefix_cache
    if cache is not None:
        flush["cache"] = {
            "entries": cache.stats.entries,
            "retained_bytes": cache.stats.retained_bytes,
            "hits": cache.stats.hits,
            "replays": cache.stats.replays,
        }
    sanitizer = runtime.sanitizer
    if sanitizer is not None:
        flush["sanitizer"] = {
            "samplers": [pruner.sampler for pruner in sanitizer.watched_pruners],
            "divergences": sanitizer.log.divergences,
            "checks": sanitizer.checker.checks,
            "overhead_s": sanitizer.checker.overhead_s,
        }
    return flush


# ------------------------------------------------------------------- parent


class QuietWorkerDetector:
    """Deadline-based dead-worker detection with an injectable clock.

    A worker process can look dead while its last frames are still in the
    queue's feeder pipe, so a crash is declared only after a *sustained*
    quiet period: the worker's process is not alive, the queue is drained,
    and that state has persisted for ``grace_s`` on the supplied clock.

    The previous implementation timed the quiet period with bare
    ``time.monotonic()`` reads inside the poll loop, which made the grace
    window untestable (and made the slow-CI flake window — a busy worker
    misdeclared crashed because the parent was descheduled — impossible to
    reproduce deterministically).  The clock is now a constructor argument:
    production passes nothing, tests pass a fake.
    """

    def __init__(self, grace_s: float = 0.5, clock: Optional[Any] = None) -> None:
        self.grace_s = grace_s
        self._clock = clock or time.monotonic
        self._suspects: Dict[int, float] = {}

    def activity(self) -> None:
        """A message arrived from the pool: every suspicion is void."""
        self._suspects.clear()

    def clear(self) -> None:
        self._suspects.clear()

    def suspect(self, widx: int) -> bool:
        """Note one dead-looking worker; True once quiet past the grace."""
        first_seen = self._suspects.setdefault(widx, self._clock())
        return self._clock() - first_seen >= self.grace_s


class ProcessParallelExplorer:
    """Drive a pool of shared-nothing exploration workers.

    Construction mirrors :class:`~repro.core.explorers.ParallelExplorer`
    (``base`` supplies the mode label and the observability objects), plus a
    :class:`WorkerTask` that each worker uses to rebuild the whole stack in
    its own process.  ``explore`` matches the serial ``Explorer.explore``
    signature and return type, and its committed results are bit-for-bit
    those of a serial run.

    ``prestart()`` optionally spawns and bootstraps the pool up front (the
    bench uses it to keep worker startup out of the timed region); otherwise
    ``explore`` bootstraps lazily.  Shutdown is unconditional and bounded:
    the stop flag is set, final flushes are drained with a deadline, and any
    worker still alive afterwards is terminated — a deadlocked or crashed
    pool surfaces as a quarantined result, never as a hang.
    """

    def __init__(
        self,
        base: Explorer,
        task: WorkerTask,
        workers: int = 4,
        prefix_cache: bool = False,
        sanitize: Optional[float] = None,
        sanitize_sample_k: int = 2,
        seed: int = 0,
        batch_size: int = 64,
        prefix_len: Optional[int] = None,
        start_method: Optional[str] = None,
        bootstrap_timeout_s: float = 120.0,
        shutdown_timeout_s: float = 10.0,
        parent_sanitizer: Optional[object] = None,
        clock: Optional[Any] = None,
        dead_worker_grace_s: float = 0.5,
        heartbeat_interval_s: Optional[float] = None,
        idle_flush_s: float = 0.05,
        throttle_s_by_slot: Optional[Dict[int, float]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.base = base
        self.task = task
        self.workers = workers
        self.prefix_cache = prefix_cache
        self.sanitize = sanitize
        self.sanitize_sample_k = sanitize_sample_k
        self.seed = seed
        self.batch_size = max(1, batch_size)
        self.prefix_len = prefix_len
        self.start_method = start_method
        self.bootstrap_timeout_s = bootstrap_timeout_s
        self.shutdown_timeout_s = shutdown_timeout_s
        self.parent_sanitizer = parent_sanitizer
        self.clock = clock or time.monotonic
        self.dead_worker_grace_s = dead_worker_grace_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.idle_flush_s = idle_flush_s
        self.throttle_s_by_slot = dict(throttle_s_by_slot or {})
        self.mode = f"{base.mode}+proc{workers}"
        #: The columnar-frame interning table: workers ship event positions,
        #: the parent maps them back through the (identically derived)
        #: schedule of the base explorer.
        self._event_ids: Tuple[str, ...] = tuple(
            event.event_id for event in base.events
        )
        self._procs: List[multiprocessing.Process] = []
        self._ctx = None
        #: Per-slot receive pipes (the one-writer channels) and the slots
        #: whose pipe reached EOF — i.e. whose worker process has exited.
        self._conns: Dict[int, Any] = {}
        self._eof: set = set()
        #: Finals superseded by a replacement worker's flush for the same
        #: slot.  Retained (not clobbered) so the dead predecessor's
        #: replay-side work is still merged; payload epochs keep the merge
        #: idempotent per (slot, attempt).
        self._stale_finals: List[Dict[str, Any]] = []
        self._stop = None
        self._go = None
        self._started = False
        self._cap: Optional[int] = None
        self._stop_on_violation: Optional[bool] = None

    # ---------------------------------------------------------------- pool

    def prestart(self, cap: int = DEFAULT_CAP, stop_on_violation: bool = True) -> None:
        """Spawn and bootstrap the pool; workers block until ``explore``.

        The cap and stop policy are baked into each worker's config at spawn
        time, so a prestarted pool must be explored with the same values.
        """
        if self._started:
            raise RuntimeError("pool already started")
        ctx = multiprocessing.get_context(self.start_method)
        self._ctx = ctx
        self._conns = {}
        self._eof = set()
        self._stale_finals = []
        self._stop = ctx.Event()
        self._go = ctx.Event()
        self._cap = cap
        self._stop_on_violation = stop_on_violation
        self._procs = []
        for widx in range(self.workers):
            self._procs.append(self._spawn_worker(widx))
        self._started = True
        ready = set()
        deadline = time.monotonic() + self.bootstrap_timeout_s
        while len(ready) < self.workers:
            message = self._next_message(timeout=0.1)
            if message is not None:
                if message[0] == "ready":
                    ready.add(message[1])
                    continue
                if message[0] == "error":
                    self._shutdown(drain_finals=None)
                    raise RuntimeError(
                        f"worker {message[1]} failed to bootstrap:\n{message[2]}"
                    )
            # A slot whose pipe hit EOF before "ready" died bootstrapping;
            # EOF is definitive (the kernel closed the write end), so no
            # grace period is needed.
            dead = [
                self._procs[widx].name
                for widx in sorted(self._eof)
                if widx not in ready
            ]
            if dead:
                self._shutdown(drain_finals=None)
                raise RuntimeError(f"worker(s) died during bootstrap: {dead}")
            if time.monotonic() > deadline:
                self._shutdown(drain_finals=None)
                raise RuntimeError(
                    f"worker bootstrap exceeded {self.bootstrap_timeout_s:g}s"
                )

    def _make_config(
        self, widx: int, skip_below: int = 0, attempt: int = 1
    ) -> _WorkerConfig:
        return _WorkerConfig(
            worker_index=widx,
            workers=self.workers,
            cap=self._cap,
            stop_on_violation=self._stop_on_violation,
            prefix_cache=self.prefix_cache,
            collect_metrics=self.base.metrics.enabled,
            batch_size=self.batch_size,
            prefix_len=self.prefix_len,
            sanitize=self.sanitize,
            sanitize_sample_k=self.sanitize_sample_k,
            seed=self.seed,
            skip_below=skip_below,
            heartbeat_interval_s=self.heartbeat_interval_s,
            attempt=attempt,
            idle_flush_s=self.idle_flush_s,
            # Skew throttles apply to first incarnations only: a stolen
            # shard's replacement must run at full speed.
            throttle_s=(
                self.throttle_s_by_slot.get(widx) if attempt == 1 else None
            ),
        )

    def _spawn_worker(
        self, widx: int, skip_below: int = 0, attempt: int = 1
    ) -> multiprocessing.Process:
        """Start one worker-slot process (also the re-lease respawn path).

        Each spawn gets a fresh one-writer pipe for its slot.  The parent
        closes its copy of the send end immediately after the fork so the
        child holds the **only** write fd — that is what makes process death
        (even SIGKILL) surface as EOF on the receive end.
        """
        stale = self._conns.pop(widx, None)
        if stale is not None:
            # A replacement is superseding a dead predecessor whose pipe was
            # not yet harvested; its undelivered frames are re-derived by the
            # replacement (replays are deterministic) and deduped on commit.
            stale.close()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                self.task,
                self._make_config(widx, skip_below=skip_below, attempt=attempt),
                send_conn,
                self._stop,
                self._go,
            ),
            name=f"erpi-proc-{widx}",
            daemon=True,
        )
        proc.start()
        send_conn.close()  # the child's copy is now the only write end
        self._conns[widx] = recv_conn
        self._eof.discard(widx)
        return proc

    # -------------------------------------------------------------- explore

    def explore(
        self,
        engine: ReplayEngine,
        assertions: Sequence[Assertion],
        cap: int = DEFAULT_CAP,
        stop_on_violation: bool = True,
    ) -> ExplorationResult:
        if not self._started:
            self.prestart(cap=cap, stop_on_violation=stop_on_violation)
        elif cap != self._cap or stop_on_violation != self._stop_on_violation:
            raise ValueError(
                "prestarted pool was configured with different cap/stop settings"
            )
        tracer = self.base.tracer
        metrics = self.base.metrics
        progress = self.base.progress
        started = time.perf_counter()
        root = tracer.begin("explore") if tracer.enabled else None

        pending: Dict[int, Tuple[int, str, Any]] = {}
        finals: Dict[int, Dict[str, Any]] = {}
        errors: Dict[int, str] = {}
        verdicts: Dict[str, str] = {}
        quarantined: List[QuarantinedReplay] = []
        next_index = 0
        explored = 0
        parent_pruned = 0  # replay-time memo hits committed as prunes
        violating: Optional[InterleavingOutcome] = None
        crashed = False
        crash_reason: Optional[str] = None

        self._go.set()
        detector = QuietWorkerDetector(
            grace_s=self.dead_worker_grace_s, clock=self.clock
        )
        try:
            done = False
            while not done:
                message = self._next_message(timeout=0.05)
                idle = message is None
                while message is not None:
                    self._dispatch(message, pending, finals, errors)
                    message = self._next_message(timeout=0.0)
                # Commit strictly in candidate order.
                while next_index in pending:
                    index, kind, payload = pending.pop(next_index)
                    next_index += 1
                    if kind == "crashed":
                        crashed = True
                        crash_reason = payload
                        done = True
                        break
                    if kind == "pruned":
                        # A worker's replay-time memo hit: counted exactly
                        # like a stream-time prune (not explored, no verdict
                        # entry — matching a serial hunt, where the pipeline
                        # drops the candidate before it is ever yielded).
                        parent_pruned += 1
                        if metrics.enabled:
                            metrics.inc("interleavings.pruned")
                            metrics.inc("pruned.state_memo")
                        if progress is not None:
                            progress.tick(metrics)
                        continue
                    explored += 1
                    if kind == "quarantine":
                        quarantined.append(payload)
                        verdicts["|".join(payload.interleaving)] = "quarantine"
                        if metrics.enabled:
                            metrics.inc("interleavings.quarantined")
                        if progress is not None:
                            progress.tick(metrics)
                        continue
                    if metrics.enabled:
                        metrics.inc("interleavings.replayed")
                    if progress is not None:
                        progress.tick(metrics)
                    if kind == "ok":
                        verdicts["|".join(payload)] = "ok"
                        continue
                    il_ids, outcome = payload
                    verdicts["|".join(il_ids)] = "violation"
                    if isinstance(outcome, (bytes, bytearray)):
                        # Columnar frames ship the outcome as pickle bytes;
                        # only a *committed* violation pays deserialisation.
                        outcome = pickle.loads(outcome)
                    violating = outcome
                    if stop_on_violation:
                        done = True
                        break
                if done:
                    break
                if errors:
                    widx, text = sorted(errors.items())[0]
                    quarantined.append(self._worker_crash_quarantine(widx, text))
                    crashed = True
                    crash_reason = f"worker {widx} crashed"
                    break
                if len(finals) + len(errors) >= self.workers:
                    # Every batch precedes its worker's final on the queue,
                    # so nothing more can arrive: anything still pending is
                    # beyond a worker's (legitimate) stopping point.
                    break
                if not idle:
                    detector.activity()
                else:
                    widx = self._dead_worker_index(finals, errors)
                    if widx is None:
                        detector.clear()
                    elif detector.suspect(widx):
                        crash = self._worker_crash_quarantine(
                            widx,
                            "(no traceback: the process died "
                            "without reporting)",
                        )
                        quarantined.append(crash)
                        crashed = True
                        crash_reason = crash.message
                        break
        finally:
            self._shutdown(drain_finals=finals)
            if metrics.enabled:
                # Committed = explored + parent-side prunes: both consume a
                # candidate index, so both come out of the discard residue.
                self._merge_metrics(metrics, finals, explored + parent_pruned)
            self.base._finish_observation(engine, root, explored, mode=self.mode)
            if metrics.enabled:
                self._merge_cache_gauges(metrics, finals)
        self._merge_sanitizer(finals)
        if violating is None and not crashed:
            # A generation-side budget crash aborts a serial run too; any
            # worker that hit it reports the identical stream position.
            for flush in finals.values():
                if flush["crash_reason"]:
                    crashed = True
                    crash_reason = flush["crash_reason"]
                    break
        if violating is not None and stop_on_violation:
            crashed = False
            crash_reason = None
        canonical = self._canonical_flush(finals)
        pruning_stats = dict(canonical["pruning_stats"]) if canonical else {}
        if parent_pruned:
            pruning_stats["state_memo"] = (
                pruning_stats.get("state_memo", 0) + parent_pruned
            )
        elapsed = time.perf_counter() - started
        return ExplorationResult(
            mode=self.mode,
            found=violating is not None,
            explored=explored,
            elapsed_s=elapsed,
            crashed=crashed,
            crash_reason=crash_reason,
            violating=violating,
            pruning_stats=pruning_stats,
            quarantined=quarantined,
            fault_events=canonical["fault_events"] if canonical else 0,
            verdicts=verdicts,
            worker_stats=self._worker_stats(finals),
        )

    @staticmethod
    def _worker_stats(finals: Dict[int, Dict[str, Any]]) -> Dict[int, Dict[str, int]]:
        return {
            widx: {
                "yields": flush["yields"],
                "materialized": flush.get("materialized", 0),
                "ipc_bytes": flush.get("ipc_bytes", 0),
            }
            for widx, flush in sorted(finals.items())
        }

    # ------------------------------------------------------------- plumbing

    def _next_message(self, timeout: float):
        """Receive one frame from any slot pipe, harvesting EOFs.

        A closed pipe always polls ready, so a dead slot is noticed here —
        its connection is retired and the slot recorded in ``_eof`` — before
        the poll loop can go idle.  Returns ``None`` when no frame arrived
        within ``timeout`` (EOF harvesting alone still returns ``None``: it
        is not a message).
        """
        if not self._conns:
            if timeout > 0:
                time.sleep(min(timeout, 0.05))
            return None
        ready = mp_connection.wait(list(self._conns.values()), timeout=timeout)
        for conn in ready:
            widx = next(w for w, c in self._conns.items() if c is conn)
            try:
                return conn.recv()
            except (EOFError, OSError):
                # The slot's worker exited (clean exit or SIGKILL): the only
                # write fd closed.  A torn frame from a mid-send kill also
                # lands here and is confined to this slot's channel.
                conn.close()
                del self._conns[widx]
                self._eof.add(widx)
        return None

    def _dispatch(self, message, pending, finals, errors) -> None:
        kind = message[0]
        if kind == "cbatch":
            for record in self._decode_cbatch(message[2]):
                # setdefault, not assignment: a re-leased replacement worker
                # re-delivers results its predecessor already shipped, and
                # replays are deterministic, so first delivery wins.
                pending.setdefault(record[0], record)
        elif kind == "batch":
            # Legacy row-oriented frames (nothing in-tree sends these any
            # more, but custom worker mains may).
            for record in message[2]:
                pending.setdefault(record[0], record)
        elif kind == "final":
            self._note_final(finals, message[1], message[2])
        elif kind == "error":
            errors[message[1]] = message[2]
        elif kind == "heartbeat":
            self._on_heartbeat(message[1], message[2])
        elif kind == "ready":
            # A replacement worker finished bootstrapping mid-run (initial
            # readiness is consumed by prestart before explore runs).
            self._on_ready(message[1])

    def _decode_cbatch(
        self, frame
    ) -> List[Tuple[int, str, Any]]:
        """Rehydrate one columnar frame into (index, kind, payload) records.

        Event positions are mapped back to ids through the parent's own
        interning table.  Violation payloads stay as pickle bytes here —
        commit-time code deserialises them only for the index that actually
        commits, so duplicate deliveries cost nothing beyond the dedup.
        """
        indices, kinds, ev, ev_lens, other = frame
        event_ids = self._event_ids
        records: List[Tuple[int, str, Any]] = []
        pos = 0
        oidx = 0
        for i, index in enumerate(indices):
            kind = kinds[i]
            count = ev_lens[i]
            il_ids = tuple(event_ids[p] for p in ev[pos:pos + count])
            pos += count
            if kind == _KIND_OK:
                records.append((index, "ok", il_ids))
            elif kind == _KIND_PRUNED:
                records.append((index, "pruned", il_ids))
            elif kind == _KIND_VIOLATION:
                records.append((index, "violation", (il_ids, other[oidx])))
                oidx += 1
            elif kind == _KIND_QUARANTINE:
                records.append((index, "quarantine", other[oidx]))
                oidx += 1
            else:
                records.append((index, "crashed", other[oidx]))
                oidx += 1
        return records

    def _note_final(self, finals, widx: int, flush: Dict[str, Any]) -> None:
        """Record a worker's final flush, retaining any superseded one.

        With re-leasing, a slot can flush twice — the crashed predecessor's
        partial (sent from its ``finally`` block) and the replacement's full
        flush.  The replacement wins the slot entry (its stream went
        furthest), but the predecessor's flush is kept aside so its
        replay-side counters still merge; the payload epochs make that merge
        idempotent per (slot, attempt) no matter which flush arrives first.
        """
        prior = finals.get(widx)
        if prior is not None:
            self._stale_finals.append(prior)
        finals[widx] = flush

    def _on_heartbeat(self, widx: int, yields: int) -> None:
        """Hook for lease-renewing subclasses; a plain pool ignores beats."""

    def _on_ready(self, widx: int) -> None:
        """Hook for re-leasing subclasses; a plain pool never respawns."""

    def _worker_crash_quarantine(self, widx: int, detail: str) -> QuarantinedReplay:
        return QuarantinedReplay(
            interleaving=(),
            error_type="WorkerCrashed",
            message=(
                f"worker {widx} died before flushing results "
                f"(exit code {self._procs[widx].exitcode})"
            ),
            traceback=detail,
            fault_plan=self.base.fault_plan_description,
        )

    def _dead_worker_index(self, finals, errors) -> Optional[int]:
        # EOF on a slot's pipe is definitive death — the kernel closed the
        # only write fd — and every frame the worker did send was already
        # drained before the EOFError surfaced (pipes deliver in order).
        for widx in sorted(self._eof):
            if widx not in finals and widx not in errors:
                return widx
        return None

    def _shutdown(self, drain_finals: Optional[Dict[int, Dict[str, Any]]]) -> None:
        """Stop workers, drain their final flushes, reap every process.

        ``drain_finals`` collects late ``final`` messages (the metrics merge
        needs the flush of the worker that enumerated furthest); ``None``
        discards everything (bootstrap failure).  Bounded by the shutdown
        timeout: leftover workers are terminated, never waited on forever.
        """
        if not self._started:
            return
        self._stop.set()
        self._go.set()  # unblock workers still waiting for the go signal
        deadline = time.monotonic() + self.shutdown_timeout_s
        expected = drain_finals if drain_finals is not None else {}
        # Drain until every slot pipe reaches EOF (worker exited) or the
        # deadline lands; each worker closes its pipe on exit, so "all conns
        # gone" is exactly "all workers done sending".
        while self._conns and time.monotonic() < deadline:
            message = self._next_message(timeout=0.05)
            if message is not None and message[0] == "final":
                if drain_finals is not None:
                    self._note_final(expected, message[1], message[2])
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=1.0)
        # Late frames from terminated workers: drain without blocking.
        while self._conns:
            message = self._next_message(timeout=0.0)
            if message is None and self._conns:
                break  # frames exhausted but a pipe is still open: drop it
            if message is not None and message[0] == "final":
                if drain_finals is not None:
                    self._note_final(expected, message[1], message[2])
        for conn in self._conns.values():
            conn.close()
        self._conns = {}
        self._started = False

    # ---------------------------------------------------------------- merge

    @staticmethod
    def _canonical_flush(finals: Dict[int, Dict[str, Any]]):
        """The flush of the worker that enumerated furthest (ties: lowest
        index).  Its stream is a superset of every worker's committed work:
        the owner of the last committed candidate enumerated through it, so
        ``canonical_yields >= committed`` always holds."""
        if not finals:
            return None
        widx = min(finals, key=lambda w: (-finals[w]["yields"], w))
        return finals[widx]

    def _merge_metrics(self, metrics, finals, committed: int) -> None:
        canonical = self._canonical_flush(finals)
        if canonical is None:
            return
        if canonical["stream"] is not None:
            metrics.merge_payload(canonical["stream"])
        for flush in list(finals.values()) + self._stale_finals:
            if flush["replay"] is not None:
                metrics.merge_payload(flush["replay"])
        discarded = canonical["yields"] - committed
        if discarded > 0:
            metrics.inc("interleavings.discarded", discarded)
        for category, nbytes in canonical["meter"].items():
            metrics.set_gauge("resource.bytes." + category, nbytes)

    @staticmethod
    def _merge_cache_gauges(metrics, finals) -> None:
        entries = 0
        retained = 0
        any_cache = False
        for flush in finals.values():
            cache = flush["cache"]
            if cache is not None:
                any_cache = True
                entries += cache["entries"]
                retained += cache["retained_bytes"]
        if any_cache:
            metrics.set_gauge("cache.entries", entries)
            metrics.set_gauge("cache.retained_bytes", retained)

    def _merge_sanitizer(self, finals) -> None:
        """Adopt worker sanitizer state into the parent's sanitizer.

        Class samplers come from the canonical worker only (its stream is
        the longest, so its classes subsume every other worker's); shadow
        divergences and check counts are summed across workers (each worker
        shadow-checks only the replays its shard owns, so they are
        disjoint).  The caller then runs ``Sanitizer.finish`` against the
        parent's reference engine exactly as a serial hunt would.
        """
        parent = self.parent_sanitizer
        if parent is None:
            return
        canonical = self._canonical_flush(finals)
        if canonical is None or canonical["sanitizer"] is None:
            return
        watched = parent.watched_pruners
        for pruner, sampler in zip(watched, canonical["sanitizer"]["samplers"]):
            pruner.adopt_sampler(sampler)
        for flush in finals.values():
            data = flush["sanitizer"]
            if data is None:
                continue
            for divergence in data["divergences"]:
                parent.log.record(divergence)
            parent.checker.checks += data["checks"]
            parent.checker.overhead_s += data["overhead_s"]
