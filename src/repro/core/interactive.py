"""The interactive exploration loop of the paper's Procedure Workflow.

Paper section 5.2::

    State 3: forall il in ILs: execute(il); InvokeTests(); reset()
    State 4: if new constraints then
                 algos <- suitable_pruning_algorithms()
                 go to State 2   (re-generate interleavings)

Developers watching early interleavings replay can *discover* event
properties — mutually independent events, operations doomed to fail — and
feed them back as constraints; ER-pi then re-generates the remaining search
space with the extra pruning applied.  :class:`InteractiveSession` implements
exactly that loop: exploration proceeds in rounds; after each round a
developer-supplied advisor callback inspects the round's outcomes and may
return new constraints; already-replayed interleavings are never replayed
again (their class keys are re-seeded into the new pruners).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import Constraint, pruners_from, spec_groups_from
from repro.core.errors import RecordingError
from repro.core.events import Event
from repro.core.explorers import ERPiExplorer
from repro.core.interleavings import Interleaving
from repro.core.pruning import Pruner
from repro.core.replay import Assertion, InterleavingOutcome, ReplayEngine
from repro.net.cluster import Cluster
from repro.proxy.recorder import EventRecorder

#: The advisor inspects one round's outcomes and returns new constraints
#: (empty/None = no new knowledge; exploration continues with the current
#: pruning configuration).
Advisor = Callable[[int, List[InterleavingOutcome]], Optional[Sequence[Constraint]]]


@dataclass
class RoundReport:
    """One State-3 round."""

    index: int
    replayed: int
    violations: List[Tuple[int, str]]
    new_constraints: int


@dataclass
class InteractiveReport:
    """The whole interactive session."""

    events: Tuple[Event, ...]
    rounds: List[RoundReport] = field(default_factory=list)
    outcomes: List[InterleavingOutcome] = field(default_factory=list)
    exhausted: bool = False

    @property
    def replayed(self) -> int:
        return sum(r.replayed for r in self.rounds)

    @property
    def violations(self) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []
        for round_report in self.rounds:
            out.extend(round_report.violations)
        return out

    @property
    def violated(self) -> bool:
        return bool(self.violations)

    def summary(self) -> str:
        lines = [
            f"rounds: {len(self.rounds)}; interleavings replayed: {self.replayed}"
            + ("; space exhausted" if self.exhausted else ""),
        ]
        for round_report in self.rounds:
            lines.append(
                f"  round {round_report.index}: replayed {round_report.replayed}, "
                f"violations {len(round_report.violations)}, "
                f"new constraints {round_report.new_constraints}"
            )
        return "\n".join(lines)


class InteractiveSession:
    """Record once, then explore in advisor-driven rounds."""

    def __init__(
        self,
        cluster: Cluster,
        base_constraints: Sequence[Constraint] = (),
        pruners: Sequence[Pruner] = (),
    ) -> None:
        self.cluster = cluster
        self._engine = ReplayEngine(cluster)
        self._recorder: Optional[EventRecorder] = None
        self._constraints: List[Constraint] = list(base_constraints)
        self._base_pruners: List[Pruner] = list(pruners)

    def start(self) -> None:
        if self._recorder is not None:
            raise RecordingError("session already started")
        self._engine.checkpoint()
        self._recorder = EventRecorder(self.cluster)
        self._recorder.start()

    def explore(
        self,
        assertions: Sequence[Assertion] = (),
        advisor: Optional[Advisor] = None,
        round_size: int = 50,
        max_rounds: int = 20,
        stop_on_violation: bool = False,
    ) -> InteractiveReport:
        """Stop recording, then run the State-3/State-4 loop.

        Each round replays up to ``round_size`` fresh interleavings.  After
        the round the advisor may contribute constraints; if it does, the
        stream is re-generated (State 2) with the richer pruning, seeded with
        everything already replayed so no interleaving runs twice.
        """
        if self._recorder is None:
            raise RecordingError("session was not started")
        events = tuple(self._recorder.stop())
        self._recorder = None

        report = InteractiveReport(events=events)
        replayed_keys: Set[Tuple[str, ...]] = set()

        for round_index in range(max_rounds):
            explorer = ERPiExplorer(
                events,
                spec_groups=spec_groups_from(self._constraints),
                pruners=self._base_pruners + pruners_from(self._constraints),
            )
            round_outcomes: List[InterleavingOutcome] = []
            round_violations: List[Tuple[int, str]] = []
            fresh = 0
            exhausted = True
            for interleaving in explorer.candidates():
                key = tuple(event.event_id for event in interleaving)
                if key in replayed_keys:
                    continue
                if fresh >= round_size:
                    exhausted = False
                    break
                replayed_keys.add(key)
                outcome = self._engine.replay(interleaving, assertions)
                report.outcomes.append(outcome)
                round_outcomes.append(outcome)
                fresh += 1
                for message in outcome.violations:
                    round_violations.append((len(report.outcomes) - 1, message))
                if outcome.violated and stop_on_violation:
                    exhausted = False
                    break

            new_constraints: Sequence[Constraint] = ()
            if advisor is not None and not (stop_on_violation and round_violations):
                new_constraints = advisor(round_index, round_outcomes) or ()
                self._constraints.extend(new_constraints)

            report.rounds.append(
                RoundReport(
                    index=round_index,
                    replayed=fresh,
                    violations=round_violations,
                    new_constraints=len(new_constraints),
                )
            )
            if stop_on_violation and round_violations:
                break
            if exhausted:
                report.exhausted = True
                break

        self._engine.restore()
        return report
