"""Developer-provided pruning constraints (paper sections 4.5 and 5.2).

ER-pi periodically checks a *constraints directory* for JSON files; each
file contributes constraints that parameterise the runtime pruning
algorithms (event independence, failed ops) or add explicit groups.  The
same constraint objects can also be handed to the session programmatically.

JSON shapes::

    {"type": "group", "pairs": [["e3", "e4"], ["e7", "e8"]]}
    {"type": "independence", "events": ["e2", "e5", "e6"]}
    {"type": "failed_ops", "predecessors": ["e1"], "successors": ["e4", "e5"]}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConstraintError
from repro.core.pruning import (
    EventIndependencePruner,
    FailedOpsPruner,
    Pruner,
)


@dataclass(frozen=True)
class GroupConstraint:
    """Explicit event pairs to fuse during Algorithm-1 grouping."""

    pairs: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class IndependenceConstraint:
    """Events declared mutually independent (Algorithm 3)."""

    events: Tuple[str, ...]


@dataclass(frozen=True)
class FailedOpsConstraint:
    """Predecessors that doom the successors (Algorithm 4)."""

    predecessors: Tuple[str, ...]
    successors: Tuple[str, ...]


Constraint = object  # union of the three dataclasses above


def parse_constraint(raw: Dict) -> Constraint:
    """Validate and convert one JSON object into a constraint."""
    ctype = raw.get("type")
    if ctype == "group":
        pairs = raw.get("pairs")
        if not isinstance(pairs, list) or not pairs:
            raise ConstraintError("group constraint needs a non-empty 'pairs' list")
        out: List[Tuple[str, str]] = []
        for pair in pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ConstraintError(f"malformed group pair {pair!r}")
            out.append((str(pair[0]), str(pair[1])))
        return GroupConstraint(pairs=tuple(out))
    if ctype == "independence":
        events = raw.get("events")
        if not isinstance(events, list) or len(events) < 2:
            raise ConstraintError("independence constraint needs >= 2 events")
        return IndependenceConstraint(events=tuple(str(e) for e in events))
    if ctype == "failed_ops":
        preds = raw.get("predecessors")
        succs = raw.get("successors")
        if not preds or not succs:
            raise ConstraintError("failed_ops needs predecessors and successors")
        return FailedOpsConstraint(
            predecessors=tuple(str(e) for e in preds),
            successors=tuple(str(e) for e in succs),
        )
    raise ConstraintError(f"unknown constraint type {ctype!r}")


def load_constraints_dir(directory: str) -> List[Constraint]:
    """Read every ``*.json`` file in ``directory`` (sorted for determinism).

    Each file holds either one constraint object or a list of them.
    """
    constraints: List[Constraint] = []
    if not os.path.isdir(directory):
        return constraints
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path) as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConstraintError(f"invalid JSON in {path}: {exc}") from exc
        items = payload if isinstance(payload, list) else [payload]
        for raw in items:
            constraints.append(parse_constraint(raw))
    return constraints


def spec_groups_from(constraints: Sequence[Constraint]) -> List[Tuple[str, str]]:
    pairs: List[Tuple[str, str]] = []
    for constraint in constraints:
        if isinstance(constraint, GroupConstraint):
            pairs.extend(constraint.pairs)
    return pairs


def suggest_update_sync_groups(events) -> Optional[GroupConstraint]:
    """Propose Algorithm-1 developer groups pairing each update with the sync
    request that immediately follows it from the same replica.

    This automates the motivating example's hand-written pairing of ``ev_X``
    with ``sync(ev_X)``: an update directly followed by "ship my state"
    almost always belongs to one logical action, so permuting the pair apart
    only wastes replays.  Returns None when no such pair exists.
    """
    from repro.core.events import EventKind

    pairs: List[Tuple[str, str]] = []
    for current, following in zip(events, events[1:]):
        if (
            current.kind == EventKind.UPDATE
            and following.kind == EventKind.SYNC_REQ
            and following.from_replica == current.replica_id
        ):
            pairs.append((current.event_id, following.event_id))
    if not pairs:
        return None
    return GroupConstraint(pairs=tuple(pairs))


def pruners_from(constraints: Sequence[Constraint]) -> List[Pruner]:
    """Instantiate the runtime pruners the constraints call for."""
    pruners: List[Pruner] = []
    for constraint in constraints:
        if isinstance(constraint, IndependenceConstraint):
            pruners.append(EventIndependencePruner(constraint.events))
        elif isinstance(constraint, FailedOpsConstraint):
            pruners.append(
                FailedOpsPruner(constraint.predecessors, constraint.successors)
            )
    return pruners
