"""The replay engine: execute interleavings against checkpointed replicas.

For each interleaving (paper section 4.3) the engine:

1. restores every replica to the checkpointed initial state (and clears the
   transport), so interleavings cannot affect each other;
2. re-invokes the recorded events in the interleaving's order, catching RDL
   errors — a failing op is *data* (it feeds failed-ops pruning), not an
   engine failure;
3. runs the registered per-interleaving assertions;
4. reports an :class:`InterleavingOutcome`.

Two executors enforce the event order:

* :class:`SequentialExecutor` — the default: events run in-line in
  interleaving order (deterministic and fast; correct because the simulated
  cluster is single-process).
* :class:`LockSteppedExecutor` — one worker thread per replica, released in
  event order by the Redis-backed distributed lock
  (:class:`~repro.redisim.lock.SequenceGate`) exactly as the paper's
  middleware orders events across real machines.

Prefix-reuse replay
-------------------

Exhaustive exploration replays thousands of near-identical interleavings:
with the paper's minimal-change (SJT) enumeration, consecutive candidates
differ by one adjacent transposition, so most of each replay re-executes a
prefix the previous replay already executed.  :class:`PrefixSnapshotCache`
exploits that: after each executed event the engine stores a snapshot of the
*one replica that event touched* (plus the transport, for sync events),
keyed by the event-id prefix.  The next candidate restores from its longest
cached prefix and re-executes only the suffix.

Replica snapshots are shared structurally between cache entries (an entry
only replaces the snapshot of the replica its last event touched) and are
reference-counted, so the cache's real retained bytes can be charged to —
and released from — a :class:`~repro.core.resources.ResourceMeter`,
keeping the Figure-10 succeed-or-crash semantics honest.  Each replica's
snapshot splits into the RDL state (the expensive copy) and the host's two
sync counters (two ints): a ``SYNC_REQ`` never changes the sender's RDL
state, so its cache entry shares the previous RDL snapshot outright and
pays only for the counter pair.

Soundness: prefix reuse requires that replaying a given event sequence from
the checkpoint is a pure function of the sequence.  That holds exactly when
(a) events run through the :class:`SequentialExecutor` and (b) the network
conditions are deterministic (FIFO, no random drops or duplicates), because
a lossy/reordering transport consumes its seeded RNG monotonically across
replays.  When either condition fails, the engine silently falls back to
fresh full replays — results are identical either way, only slower.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ReplayError
from repro.core.events import Event, EventKind, assign_lamport
from repro.core.interleavings import Interleaving
from repro.core.resources import ResourceMeter, deep_footprint
from repro.crdt.base import CRDTError
from repro.faults.errors import ReplayTimeout
from repro.net.cluster import Cluster
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.rdl.base import RDLError
from repro.redisim.errors import LockError
from repro.redisim.farm import RedisimFarm
from repro.redisim.lock import SequenceGate


@dataclass(slots=True)
class EventResult:
    """What happened when one event replayed."""

    event: Event
    lamport: int
    ok: bool
    result: Any = None
    error: Optional[str] = None


class InterleavingOutcome:
    """The full result of replaying one interleaving.

    ``states`` may be constructed lazily: the cached replay path passes a
    zero-argument thunk over copy-on-write state views instead of eagerly
    computing every replica's observable value — most assertions never read
    final states, so the work is done only on first access.
    """

    __slots__ = ("interleaving", "event_results", "_states", "violations", "duration_s")

    def __init__(
        self,
        interleaving: Interleaving,
        event_results: List[EventResult],
        states: Any,
        violations: List[str],
        duration_s: float,
    ) -> None:
        self.interleaving = interleaving
        self.event_results = event_results
        self._states = states
        self.violations = violations
        self.duration_s = duration_s

    @property
    def states(self) -> Dict[str, Any]:
        states = self._states
        if callable(states):
            states = self._states = states()
        return states

    def __getstate__(self):
        # Pickling (process-backed exploration ships violating outcomes over
        # IPC) must force the lazy state thunk: the closure holds live
        # copy-on-write views of the worker's cluster, which neither pickle
        # nor mean anything in another process.
        return (
            self.interleaving,
            self.event_results,
            self.states,
            self.violations,
            self.duration_s,
        )

    def __setstate__(self, state) -> None:
        (
            self.interleaving,
            self.event_results,
            self._states,
            self.violations,
            self.duration_s,
        ) = state

    @property
    def violated(self) -> bool:
        return bool(self.violations)

    @property
    def failed_ops(self) -> List[EventResult]:
        return [res for res in self.event_results if not res.ok]

    def reads(self) -> Dict[str, Any]:
        """event_id -> result for every READ event (what the app observed)."""
        return {
            res.event.event_id: res.result
            for res in self.event_results
            if res.event.kind == EventKind.READ
        }


#: An assertion takes the outcome-so-far (results + final states) and returns
#: a violation message, or None when satisfied.
Assertion = Callable[["InterleavingOutcome"], Optional[str]]


class SequentialExecutor:
    """Run the events of an interleaving in-line, in order.

    ``timeout_s`` arms a per-replay wall-clock watchdog: when a replay's
    elapsed time exceeds it, :class:`ReplayTimeout` is raised between
    events (cooperative — a single wedged subject call cannot be
    interrupted, but a slow or looping replay is cut off at the next event
    boundary and quarantined by the explorer).
    """

    def __init__(self, timeout_s: Optional[float] = None) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = timeout_s

    def run(self, cluster: Cluster, interleaving: Interleaving) -> List[EventResult]:
        # Lamport stamps along a total order are just 1-based positions
        # (see assign_lamport); invoking directly skips the StampedEvent
        # allocations on the hottest loop in the engine.
        timeout = self.timeout_s
        if timeout is None:
            return [
                _invoke(cluster, event, lamport)
                for lamport, event in enumerate(interleaving, 1)
            ]
        deadline = time.monotonic() + timeout
        results: List[EventResult] = []
        for lamport, event in enumerate(interleaving, 1):
            if time.monotonic() > deadline:
                raise ReplayTimeout(
                    f"replay exceeded the {timeout}s watchdog after "
                    f"{lamport - 1} of {len(interleaving)} events"
                )
            results.append(_invoke(cluster, event, lamport))
        return results


class LockSteppedExecutor:
    """One worker per replica; the distributed lock releases them in order.

    Demonstrates (and tests) the paper's Redis-mutex ordering mechanism: each
    worker owns the events of one replica and may only execute its next event
    when the shared cursor — maintained under the Redlock mutex on a farm of
    redisim instances — reaches that event's global position.
    """

    def __init__(
        self,
        farm: Optional[RedisimFarm] = None,
        timeout_s: float = 30.0,
        gate_retries: int = 2,
        gate_backoff_s: float = 0.05,
    ) -> None:
        self.farm = farm or RedisimFarm(size=3, name_prefix="erpi-lock")
        self.timeout_s = timeout_s
        #: Transient SequenceGate acquisition failures (a quorum blip on the
        #: redisim farm) are retried this many times with exponential
        #: backoff before the replay is declared failed.
        self.gate_retries = max(gate_retries, 0)
        self.gate_backoff_s = gate_backoff_s
        self._session_counter = 0

    def _wait_for_turn(self, gate: SequenceGate, position: int) -> None:
        delay = self.gate_backoff_s
        for attempt in range(self.gate_retries + 1):
            try:
                gate.wait_for_turn(position, timeout_s=self.timeout_s)
                return
            except LockError:
                if attempt == self.gate_retries:
                    raise
                time.sleep(delay)
                delay *= 2

    def run(self, cluster: Cluster, interleaving: Interleaving) -> List[EventResult]:
        self._session_counter += 1
        gate = SequenceGate(self.farm, session_id=f"replay-{self._session_counter}")
        stamped = list(assign_lamport(interleaving))
        slots: List[Optional[EventResult]] = [None] * len(stamped)
        per_replica: Dict[str, List[int]] = {}
        for position, item in enumerate(stamped):
            per_replica.setdefault(item.event.replica_id, []).append(position)
        errors: List[BaseException] = []

        def worker(positions: List[int]) -> None:
            try:
                for position in positions:
                    self._wait_for_turn(gate, position)
                    item = stamped[position]
                    slots[position] = _invoke(cluster, item.event, item.lamport)
                    gate.complete_turn(position)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            (replica_id, threading.Thread(target=worker, args=(positions,), daemon=True))
            for replica_id, positions in per_replica.items()
        ]
        for _, thread in threads:
            thread.start()
        deadline = time.monotonic() + self.timeout_s * (len(stamped) + 1)
        stuck: List[str] = []
        for replica_id, thread in threads:
            thread.join(timeout=max(deadline - time.monotonic(), 0.0))
            if thread.is_alive():
                stuck.append(replica_id)
        if errors:
            raise ReplayError(f"lock-stepped replay failed: {errors[0]!r}") from errors[0]
        if stuck:
            raise ReplayError(
                "lock-stepped replay timed out after "
                f"{self.timeout_s * (len(stamped) + 1):.1f}s; "
                f"stuck replica worker(s): {', '.join(sorted(stuck))}"
            )
        if any(slot is None for slot in slots):
            raise ReplayError("lock-stepped replay did not complete every event")
        return [slot for slot in slots if slot is not None]


def _invoke(cluster: Cluster, event: Event, lamport: int) -> EventResult:
    """Re-invoke one recorded event against the cluster."""
    try:
        kind = event.kind
        if kind is EventKind.SYNC_REQ:
            result = cluster.send_sync(event.from_replica, event.to_replica)
        elif kind is EventKind.EXEC_SYNC:
            result = cluster.execute_sync(event.from_replica, event.to_replica)
        elif kind is EventKind.CRASH:
            cluster.crash(event.replica_id)
            result = True
        elif kind is EventKind.RECOVER:
            cluster.recover(event.replica_id)
            result = True
        elif kind is EventKind.PARTITION:
            cluster.partition(event.from_replica, event.to_replica)
            result = True
        elif kind is EventKind.HEAL:
            cluster.heal(event.from_replica, event.to_replica)
            result = True
        else:
            # An op against a crashed replica raises ReplicaDownError —
            # recorded below as a failed op, like the real library's client
            # erroring out against a dead process.
            host = cluster.host(event.replica_id)
            host.require_up()
            rdl = host.rdl
            method = getattr(rdl, event.op_name, None)
            if method is None or not callable(method):
                raise ReplayError(
                    f"replica {event.replica_id!r} has no method {event.op_name!r}"
                )
            # Ops mutate the RDL directly (not through the cluster's sync
            # methods), so the digest invalidation happens here — before the
            # call, so a partially-applied failing op can never leave a stale
            # cached digest behind.  READs invalidate too: the footprint
            # model already treats every local op as a replica write because
            # subjects mutate on read (Roshi's select/score read-repair).
            host.invalidate_digest()
            if event.kwargs:
                result = method(*event.args, **dict(event.kwargs))
            else:
                result = method(*event.args)
        return EventResult(event=event, lamport=lamport, ok=True, result=result)
    except (RDLError, CRDTError, KeyError, IndexError, ValueError) as exc:
        # The library (or the data structure beneath it) rejected the op
        # under this ordering: that is exactly the kind of behaviour ER-pi
        # exists to surface.  Record it as a failed op and keep replaying.
        return EventResult(
            event=event, lamport=lamport, ok=False, error=f"{type(exc).__name__}: {exc}"
        )


def _states_from_views(views: Dict[str, Tuple[type, Any]]) -> Dict[str, Any]:
    """Evaluate replica states from captured copy-on-write state views.

    Rebuilds a throwaway shell of each replica class around its view dict
    and asks it for ``value()`` — read-only by the host protocol contract.
    """
    out: Dict[str, Any] = {}
    for rid, (cls, view) in views.items():
        shim = cls.__new__(cls)
        shim.__dict__.update(view)
        out[rid] = shim.value()
    return out


# --------------------------------------------------------------------------
# Prefix snapshot cache
# --------------------------------------------------------------------------


class _Snap:
    """A reference-counted stored snapshot (one replica, or the transport).

    Entries share these structurally: an entry only introduces a new snap for
    the replica its last event touched, so the retained-byte accounting must
    count each snap once, however many entries reference it.
    """

    __slots__ = ("data", "nbytes", "refs")

    def __init__(self, data: Any, nbytes: int) -> None:
        self.data = data
        self.nbytes = nbytes
        self.refs = 0


#: Per-replica cache record: (RDL-state snap, applied_syncs, sent_syncs).
#: The counters live outside the refcounted snap so entries that only bump a
#: counter (``SYNC_REQ`` on the sender) can share the RDL snapshot.
_ReplicaRecord = Tuple[_Snap, int, int]


class _RootEntry:
    """The trie root: full cluster state at the checkpoint.

    The only entry that carries a snapshot for *every* replica — all other
    entries are deltas against their parent chain.
    """

    __slots__ = ("entry_id", "replica_snaps", "transport_snap")

    def __init__(
        self,
        entry_id: int,
        replica_snaps: Dict[str, _ReplicaRecord],
        transport_snap: _Snap,
    ) -> None:
        self.entry_id = entry_id
        self.replica_snaps = replica_snaps
        self.transport_snap = transport_snap


class _CacheEntry:
    """The *delta* one event applied on top of its parent prefix.

    Entries form a trie: each is stored under ``(parent.entry_id,
    last_event_id)``, so extending a prefix by one event is a single dict
    lookup with an O(1) hash — no event-id tuples to slice or hash.  An
    entry records only what its own event changed: the event's result, the
    touched replica's snapshot + sync counters (``rid is None`` for a READ),
    and a transport snapshot for sync events.  A cache hit walks the parent
    chain once to assemble the full prefix state; storing an entry is O(1).
    """

    __slots__ = (
        "entry_id",
        "key",
        "parent",
        "result",
        "rid",
        "snap",
        "applied_syncs",
        "sent_syncs",
        "transport_snap",
    )

    def __init__(
        self,
        entry_id: int,
        key: Tuple[int, str],
        parent: Any,
        result: EventResult,
        rid: Optional[str],
        snap: Optional[_Snap],
        applied_syncs: int,
        sent_syncs: int,
        transport_snap: Optional[_Snap],
    ) -> None:
        self.entry_id = entry_id
        self.key = key
        self.parent = parent
        self.result = result
        self.rid = rid
        self.snap = snap
        self.applied_syncs = applied_syncs
        self.sent_syncs = sent_syncs
        self.transport_snap = transport_snap


@dataclass
class PrefixCacheStats:
    """Observability counters for the prefix snapshot cache."""

    replays: int = 0
    hits: int = 0
    events_reused: int = 0
    events_executed: int = 0
    entries: int = 0
    evictions: int = 0
    retained_bytes: int = 0

    @property
    def reuse_fraction(self) -> float:
        total = self.events_reused + self.events_executed
        return self.events_reused / total if total else 0.0


class PrefixSnapshotCache:
    """Generational cache of cluster snapshots keyed by event-id prefixes.

    ``max_entries`` bounds the number of retained prefixes; retained bytes
    are charged to ``meter`` (category ``"prefix_cache"``) when one is
    attached, and released as entries are evicted, so a budget-limited run
    crashes honestly if the cache outgrows the machine.

    Eviction is generational: when the cache fills, every entry (except the
    root) is dropped at once and the next replays repopulate it.  Per-entry
    LRU bookkeeping costs more than it saves here — the enumeration orders
    replay near-neighbourhoods, so recently stored prefixes dominate hits
    and a full clear loses at most one neighbourhood's worth of reuse.
    """

    CATEGORY = "prefix_cache"

    def __init__(
        self,
        meter: Optional[ResourceMeter] = None,
        max_entries: int = 8192,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.meter = meter
        self.max_entries = max_entries
        self.stats = PrefixCacheStats()
        self._entries: Dict[Tuple[int, str], _CacheEntry] = {}
        self._next_id = 0
        self._root: Optional[_RootEntry] = None
        self._baseline: Tuple[int, int, int, int] = (0, 0, 0, 0)

    # ------------------------------------------------------------- plumbing

    @property
    def root(self) -> Optional[_RootEntry]:
        return self._root

    @property
    def baseline(self) -> Tuple[int, int, int, int]:
        """Absolute transport counters at the checkpoint (root) state."""
        return self._baseline

    def make_snap(self, data: Any) -> _Snap:
        # Footprint walks are only worth their cost when someone meters them.
        nbytes = deep_footprint(data) if self.meter is not None else 0
        return _Snap(data, nbytes)

    def next_id(self) -> int:
        """A fresh entry id (trie node identity for child keys)."""
        self._next_id += 1
        return self._next_id

    def _acquire(self, snap: _Snap) -> None:
        # Unmetered snaps have nbytes == 0: nothing to account, skip.
        if not snap.nbytes:
            return
        snap.refs += 1
        if snap.refs == 1:
            self.stats.retained_bytes += snap.nbytes
            if self.meter is not None:
                self.meter.charge(self.CATEGORY, snap.nbytes)

    def _release(self, snap: _Snap) -> None:
        if not snap.nbytes:
            return
        snap.refs -= 1
        if snap.refs == 0:
            self.stats.retained_bytes -= snap.nbytes
            if self.meter is not None:
                self.meter.release(self.CATEGORY, snap.nbytes)

    def _entry_snaps(self, entry: _CacheEntry) -> List[_Snap]:
        snaps: List[_Snap] = []
        if entry.snap is not None:
            snaps.append(entry.snap)
        if entry.transport_snap is not None:
            snaps.append(entry.transport_snap)
        return snaps

    # ------------------------------------------------------------------ api

    def set_root(self, entry: _RootEntry, baseline: Tuple[int, int, int, int]) -> None:
        """Install the checkpoint-state entry (never evicted)."""
        if self._root is not None:
            self.clear()
        for record in entry.replica_snaps.values():
            self._acquire(record[0])
        self._acquire(entry.transport_snap)
        self._root = entry
        self._baseline = baseline

    def get(self, key: Tuple[int, str]) -> Optional[_CacheEntry]:
        """Look up the child entry under ``(parent_entry_id, event_id)``."""
        return self._entries.get(key)

    def put(self, entry: _CacheEntry) -> None:
        """Insert an entry, charging the meter; a full cache drops its whole
        generation first.  A mid-insert budget crash rolls the entry back.

        Without a meter every snap's footprint is zero, so the refcount
        bookkeeping is an observable no-op and is skipped entirely.
        """
        entries = self._entries
        if self.max_entries == 0 or entry.key in entries:
            return
        stats = self.stats
        metered = self.meter is not None
        if len(entries) >= self.max_entries:
            if metered:
                for evicted in entries.values():
                    for snap in self._entry_snaps(evicted):
                        self._release(snap)
            stats.evictions += len(entries)
            entries.clear()
        if metered:
            acquired: List[_Snap] = []
            try:
                for snap in self._entry_snaps(entry):
                    self._acquire(snap)
                    acquired.append(snap)
            except Exception:
                for snap in acquired:
                    self._release(snap)
                raise
        entries[entry.key] = entry
        stats.entries = len(entries)

    def clear(self) -> None:
        """Drop every entry (including the root), releasing all charges."""
        for entry in self._entries.values():
            for snap in self._entry_snaps(entry):
                self._release(snap)
        self._entries.clear()
        root = self._root
        if root is not None:
            for record in root.replica_snaps.values():
                self._release(record[0])
            self._release(root.transport_snap)
            self._root = None
        self.stats.entries = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, str]) -> bool:
        return key in self._entries


class ReplayEngine:
    """Checkpoint/replay/assert driver over a cluster.

    With ``prefix_cache`` attached (see :meth:`enable_prefix_cache`) and a
    sound configuration (sequential executor, deterministic network), replays
    restore from the longest cached event-id prefix and execute only the
    suffix; otherwise every replay is a fresh full run from the checkpoint.
    While a cache is active the engine must be the only writer to its
    cluster between ``checkpoint()`` and the final ``restore()``.
    """

    def __init__(
        self,
        cluster: Cluster,
        executor: Optional[Any] = None,
        prefix_cache: Optional[PrefixSnapshotCache] = None,
    ) -> None:
        self.cluster = cluster
        self.executor = executor or SequentialExecutor()
        self.prefix_cache = prefix_cache
        #: Optional online cross-checker (see repro.core.sanitizer): when
        #: attached, a configurable fraction of cache-accelerated replays are
        #: shadow-replayed from scratch and diffed against the cached result.
        self.sanitizer: Optional[Any] = None
        #: Semantic pruning hooks (see repro.core.pruning.semantic).  When a
        #: :class:`StateMemoPruner` is bound, memo-eligible replays run
        #: through the digest-capture path and feed it; a bound
        #: ``footprint_observer`` (the DPOR pruner) receives each event's
        #: observed write set for model validation.
        self.state_memo: Optional[Any] = None
        self.footprint_observer: Optional[Any] = None
        self._checkpoint: Optional[Dict[str, Any]] = None
        # Fault-injection bookkeeping: the checkpoint's partition topology
        # (fault events may partition/heal mid-replay) and whether the last
        # replay ran fault events that must be reset before the next one.
        self._baseline_partitions: set = set()
        self._fault_dirty = False
        #: Transport counter deltas for the most recent replay
        #: (sent, dropped, delivered, duplicated).
        self.last_transport_stats: Tuple[int, int, int, int] = (0, 0, 0, 0)
        #: Sends the network suppressed (partition / drop) during the most
        #: recent replay.
        self.last_suppressed_count: int = 0
        #: Observability (see repro.obs): the shared null objects unless an
        #: observed run swaps real ones in.  ``worker_id`` labels replay
        #: spans from ParallelExplorer worker engines.
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.worker_id: Optional[int] = None
        self._last_was_cached = False
        # Live-state version tracking: maps replica id -> the _Snap whose RDL
        # state the replica currently holds (None/missing = unknown/dirty).
        # Sync counters are not tracked — they are two ints, always restored.
        self._live_rdl: Dict[str, Optional[_Snap]] = {}
        self._live_transport: Optional[_Snap] = None
        # Incremental-digest state for the memo path (see _replay_digest):
        # the checkpoint boundary's digests, the (digest, event-id) ->
        # boundary-digest transition memo, the last cluster hit/miss counts
        # already folded into metrics, and the sound-or-off switch sampled
        # verification flips.
        self._checkpoint_digests: Optional[Tuple[Dict[str, str], str, str]] = None
        self._digest_trie: Dict[Tuple[str, ...], Tuple[Dict[str, str], str, str]] = {}
        self._digest_trie_limit = 200_000
        self._digest_reported: Tuple[int, int] = (0, 0)
        self._digest_replays = 0
        self._digest_exact = True

    def enable_prefix_cache(
        self,
        meter: Optional[ResourceMeter] = None,
        max_entries: int = 8192,
    ) -> PrefixSnapshotCache:
        """Attach (and return) a fresh :class:`PrefixSnapshotCache`."""
        self.prefix_cache = PrefixSnapshotCache(meter=meter, max_entries=max_entries)
        self._forget_live_versions()
        return self.prefix_cache

    def checkpoint(self) -> None:
        """Snapshot the replicas' current states as the replay baseline."""
        self._checkpoint = self.cluster.checkpoint()
        self._baseline_partitions = set(self.cluster.transport.conditions.partitions)
        self._fault_dirty = False
        if self.prefix_cache is not None:
            self.prefix_cache.clear()
        self._forget_live_versions()
        # A new baseline voids every memoised boundary digest.
        self._checkpoint_digests = None
        self._digest_trie.clear()
        self.cluster.invalidate_digests()

    def prefix_cache_active(self) -> bool:
        """True when replays will actually use the prefix cache.

        Reuse is sound only when replaying a prefix is a pure function of
        the event sequence: the in-line sequential executor plus a
        deterministic transport (FIFO, no random drops/duplicates — a lossy
        transport consumes its seeded RNG monotonically *across* replays, so
        skipping a prefix would desynchronise the stream).
        """
        if self.prefix_cache is None:
            return False
        if type(self.executor) is not SequentialExecutor:
            return False
        conditions = self.cluster.transport.conditions
        if not (
            conditions.fifo
            and conditions.drop_rate == 0
            and conditions.duplicate_rate == 0
        ):
            return False
        # Every replica must expose its full state through the
        # copy-on-write view protocol (see RDLReplica.supports_state_view).
        return all(
            host.rdl.supports_state_view for host in self.cluster._hosts.values()
        )

    def semantic_supported(self, require_digest: bool = True) -> bool:
        """True when semantic pruning may bind to this engine.

        The requirements mirror :meth:`prefix_cache_active` — replay must
        be a pure function of the event sequence — plus, for the state
        memo (``require_digest``), every subject must expose
        ``canonical_state()`` so the cluster is digestible.
        """
        return self.semantic_unsupported_reason(require_digest) is None

    def semantic_unsupported_reason(
        self, require_digest: bool = True
    ) -> Optional[str]:
        """Why semantic pruning cannot bind here, or None when it can."""
        if self._checkpoint is None:
            return "no checkpoint taken"
        if type(self.executor) is not SequentialExecutor:
            return f"executor {type(self.executor).__name__} is not sequential"
        conditions = self.cluster.transport.conditions
        if not conditions.fifo:
            return "transport is not FIFO"
        if conditions.drop_rate != 0 or conditions.duplicate_rate != 0:
            return "transport has random drops/duplicates"
        if getattr(conditions, "latency_ticks", 0):
            return "transport has delivery latency"
        if require_digest and self.cluster.state_digest() is None:
            return "a subject does not implement canonical_state()"
        return None

    def replay(
        self,
        interleaving: Interleaving,
        assertions: Sequence[Assertion] = (),
    ) -> InterleavingOutcome:
        """Replay one interleaving from the checkpoint and run assertions.

        When a tracer/metrics registry is attached this emits one ``replay``
        span (cache hit/miss/off, violation verdict, worker id) and updates
        the replay counters; with the null objects attached the observed
        wrapper is a single boolean check.
        """
        tracer = self.tracer
        metrics = self.metrics
        if not (tracer.enabled or metrics.enabled):
            return self._replay_checked(interleaving, assertions)
        cache = self.prefix_cache
        hits_before = cache.stats.hits if cache is not None else 0
        span = tracer.begin("replay") if tracer.enabled else None
        try:
            outcome = self._replay_checked(interleaving, assertions)
        except BaseException as exc:
            if span is not None:
                tracer.end(span, error=type(exc).__name__)
            raise
        if self._last_was_cached:
            hit = cache is not None and cache.stats.hits > hits_before
            cache_state = "hit" if hit else "miss"
        else:
            cache_state = "off"
        if metrics.enabled:
            self._record_replay_metrics(metrics, outcome, cache_state)
        if span is not None:
            if self.worker_id is not None:
                tracer.end(
                    span,
                    cache=cache_state,
                    violated=outcome.violated,
                    worker=self.worker_id,
                )
            else:
                tracer.end(span, cache=cache_state, violated=outcome.violated)
        return outcome

    def _record_replay_metrics(
        self, metrics: Any, outcome: InterleavingOutcome, cache_state: str
    ) -> None:
        if cache_state == "hit":
            metrics.inc("replay.cache_hits")
        elif cache_state == "miss":
            metrics.inc("replay.cache_misses")
        else:
            metrics.inc("replay.fresh")
        sent, dropped, _delivered, _duplicated = self.last_transport_stats
        if sent:
            metrics.inc("messages.sent", sent)
        if dropped:
            metrics.inc("messages.dropped", dropped)
        if self.last_suppressed_count:
            metrics.inc("messages.suppressed", self.last_suppressed_count)
        hits = self.cluster.digest_hits
        misses = self.cluster.digest_misses
        reported_hits, reported_misses = self._digest_reported
        if hits > reported_hits:
            metrics.inc("digest.cache_hits", hits - reported_hits)
        if misses > reported_misses:
            metrics.inc("digest.cache_misses", misses - reported_misses)
        if (hits, misses) != (reported_hits, reported_misses):
            self._digest_reported = (hits, misses)
        metrics.observe("replay.duration_us", outcome.duration_s * 1e6)

    def _replay_checked(
        self,
        interleaving: Interleaving,
        assertions: Sequence[Assertion] = (),
    ) -> InterleavingOutcome:
        if self._checkpoint is None:
            raise ReplayError("checkpoint() must be called before replay()")
        # Fault events make a replay impure (crashes lose volatile state,
        # partitions rewire the network), so fault-bearing interleavings
        # always replay fresh from the checkpoint — the prefix cache's
        # purity argument does not extend to them.
        has_fault = any(event.is_fault for event in interleaving)
        if self._fault_dirty:
            self._reset_fault_state()
        memo = self.state_memo
        if memo is not None and memo.enabled and not has_fault:
            # Memo-eligible replays run the digest-capture path (fresh from
            # the checkpoint, recording the cluster digest at every event
            # boundary) so the memo table learns this replay's states.
            # These replays bypass the prefix cache: the memo trades prefix
            # *restoration* speed for skipping whole replays.
            self._last_was_cached = False
            outcome = self._replay_digest(interleaving, memo)
            for assertion in assertions:
                message = assertion(outcome)
                if message is not None:
                    outcome.violations.append(message)
            return outcome
        cached = not has_fault and self.prefix_cache_active()
        self._last_was_cached = cached
        if cached:
            outcome = self._replay_cached(interleaving)
        else:
            outcome = self._replay_fresh(interleaving)
            if has_fault:
                self._fault_dirty = True
        if cached and self.sanitizer is not None:
            self.sanitizer.maybe_check(self, interleaving, outcome)
        for assertion in assertions:
            message = assertion(outcome)
            if message is not None:
                outcome.violations.append(message)
        return outcome

    def replay_fresh(
        self,
        interleaving: Interleaving,
        assertions: Sequence[Assertion] = (),
    ) -> InterleavingOutcome:
        """A from-scratch replay that bypasses the prefix cache.

        Used by the differential sanitizer as its ground truth: the cluster
        is restored to the checkpoint and every event re-executes, whatever
        caches are attached.  Safe to interleave with cached replays — the
        engine's live-state tracking is invalidated so the next cached
        replay restores honestly.

        Observed runs emit a ``replay:fresh`` span per call (distinguishing
        sanitizer ground-truth replays from pipeline replays in traces).
        """
        tracer = self.tracer
        metrics = self.metrics
        if not (tracer.enabled or metrics.enabled):
            return self._replay_fresh_checked(interleaving, assertions)
        span = tracer.begin("replay:fresh") if tracer.enabled else None
        try:
            outcome = self._replay_fresh_checked(interleaving, assertions)
        except BaseException as exc:
            if span is not None:
                tracer.end(span, error=type(exc).__name__)
            raise
        if metrics.enabled:
            self._record_replay_metrics(metrics, outcome, "fresh")
        if span is not None:
            tracer.end(span, violated=outcome.violated)
        return outcome

    def _replay_fresh_checked(
        self,
        interleaving: Interleaving,
        assertions: Sequence[Assertion] = (),
    ) -> InterleavingOutcome:
        if self._checkpoint is None:
            raise ReplayError("checkpoint() must be called before replay_fresh()")
        if self._fault_dirty:
            self._reset_fault_state()
        outcome = self._replay_fresh(interleaving)
        if any(event.is_fault for event in interleaving):
            self._fault_dirty = True
        for assertion in assertions:
            message = assertion(outcome)
            if message is not None:
                outcome.violations.append(message)
        return outcome

    def restore(self) -> None:
        """Reset the cluster to the checkpoint (used after the final replay)."""
        if self._checkpoint is not None:
            self.cluster.restore(self._checkpoint)
            self._reset_fault_state()
        self._forget_live_versions()

    # ------------------------------------------------------------- internals

    def _forget_live_versions(self) -> None:
        self._live_rdl = {}
        self._live_transport = None

    def _reset_fault_state(self) -> None:
        """Undo what a fault-bearing replay left behind: bring every host
        back up and reinstate the checkpoint's partition topology."""
        for host in self.cluster._hosts.values():
            host.force_up()
        conditions = self.cluster.transport.conditions
        conditions.partitions.clear()
        conditions.partitions.update(self._baseline_partitions)
        self._fault_dirty = False

    def _replay_fresh(self, interleaving: Interleaving) -> InterleavingOutcome:
        transport = self.cluster.transport
        self.cluster.restore(self._checkpoint)
        # restore() resets the transport counters to zero, so the baseline
        # for this replay's delta is taken *after* it.
        before = transport.stats()
        self._forget_live_versions()
        started = time.perf_counter()
        event_results = self.executor.run(self.cluster, interleaving)
        duration = time.perf_counter() - started
        after = transport.stats()
        self.last_transport_stats = tuple(n - b for n, b in zip(after, before))
        # restore() cleared the suppressed-send log, so its whole contents
        # belong to this replay.
        self.last_suppressed_count = len(self.cluster.suppressed_sends)
        return InterleavingOutcome(
            interleaving=interleaving,
            event_results=event_results,
            states=self.cluster.states(),
            violations=[],
            duration_s=duration,
        )

    def _replay_digest(
        self, interleaving: Interleaving, memo: Any
    ) -> InterleavingOutcome:
        """A fresh replay that captures the cluster digest at every event
        boundary and feeds the bound state-memo pruner.

        The per-boundary digest is a hash DAG: per-replica digests combined
        with the transport digest, exactly as :meth:`Cluster.state_digest`
        builds them.  Digesting is incremental on three levels:

        1. *Per-replica caching* — the cluster's opt-in digest cache (armed
           lazily on the first digest replay) means only the replica an
           event actually touched pays a canonical walk; the others return
           their cached digests, so the *observed* write set — which
           replicas' digests actually changed — stays exact at replica
           granularity and is reported to ``footprint_observer`` so the
           DPOR pruner can falsify its static model (sound-or-off).
        2. *Checkpoint re-priming* — the checkpoint boundary's digests are
           computed once per checkpoint and re-primed into the host caches
           after every restore.
        3. *A transition memo* — ``(combined digest before, event id) ->
           boundary digests after``.  Minimal-change enumeration revisits
           the same states through thousands of prefixes, and commuting
           subject ops make *different* prefixes converge to the same
           state; both reuse the memoised transition (events still
           re-execute — only the canonical walks are skipped).  Sound under
           exactly the assumption the memo pruner itself rests on: a
           digest identifies the semantic state, and replaying an event
           from the same semantic state reaches the same semantic state.

        When a ``footprint_observer`` is bound, every 64th replay (and the
        first) recomputes all digests from scratch and cross-checks the
        incremental values; a mismatch — a subject mutating outside the
        invalidation hooks — permanently drops back to exact per-boundary
        digesting (sound-or-off).
        """
        from repro.statehash import combine_digests, state_digest

        cluster = self.cluster
        transport = cluster.transport
        hosts = cluster._hosts
        rids = cluster.replica_ids()
        observer = self.footprint_observer
        if cluster.digest_cache_enabled != self._digest_exact:
            if self._digest_exact:
                # Recording is over once replays start: every mutation from
                # here flows through the invalidation hooks, so per-replica
                # digest caching becomes sound to switch on.
                cluster.enable_digest_cache()
            else:
                cluster.digest_cache_enabled = False
                cluster.invalidate_digests()
        base = self._checkpoint_digests
        transitions = self._digest_trie if self._digest_exact else None
        if base is not None and transitions is not None:
            # Fast path: when every boundary's transition is already
            # memoised, the whole digest sequence is determined without a
            # single canonical walk — and the replay itself can then run
            # through the prefix cache (same events, same outcome, and the
            # memo path's full checkpoint restore is skipped too).
            chain_digests: List[str] = [base[2]]
            chain_entries: List[Tuple[Dict[str, str], str, str]] = []
            node = base[2]
            get_transition = transitions.get
            complete = True
            for event in interleaving:
                entry = get_transition((node, event.event_id))
                if entry is None:
                    complete = False
                    break
                chain_entries.append(entry)
                node = entry[1]
                chain_digests.append(node)
            if complete and self.prefix_cache_active():
                cluster.digest_hits += len(chain_entries)
                outcome = self._replay_cached(interleaving)
                if observer is not None:
                    prev = base[0]
                    for event, entry in zip(interleaving, chain_entries):
                        entry_rdigests = entry[0]
                        observer.observe_write_set(
                            event,
                            [
                                rid
                                for rid, digest in entry_rdigests.items()
                                if prev[rid] != digest
                            ],
                        )
                        prev = entry_rdigests
                memo.record_replay(interleaving, outcome, chain_digests)
                return outcome
        cluster.restore(self._checkpoint)
        before = transport.stats()
        self._forget_live_versions()
        started = time.perf_counter()
        if base is None:
            rdigests = {rid: cluster.replica_state_digest(rid) for rid in rids}
            tdigest = cluster.transport_digest()
            parts = list(rdigests.items())
            parts.append(("#transport", tdigest))
            base_combined = combine_digests(parts)
            if self._digest_exact:
                self._checkpoint_digests = (dict(rdigests), tdigest, base_combined)
        else:
            base_rdigests, tdigest, base_combined = base
            rdigests = dict(base_rdigests)
            # restore() invalidated every host cache; the checkpoint values
            # are exactly what a fresh walk would recompute.
            for rid in rids:
                hosts[rid].digest_cache = rdigests[rid]
            cluster._transport_digest_cache = tdigest

        def combined() -> str:
            parts = list(rdigests.items())
            parts.append(("#transport", tdigest))
            return combine_digests(parts)

        digests: List[str] = [base_combined]
        results: List[EventResult] = []
        timeout = getattr(self.executor, "timeout_s", None)
        deadline = None if timeout is None else time.monotonic() + timeout
        for lamport, event in enumerate(interleaving, 1):
            if deadline is not None and time.monotonic() > deadline:
                raise ReplayTimeout(
                    f"replay exceeded the {timeout}s watchdog after "
                    f"{lamport - 1} of {len(interleaving)} events"
                )
            results.append(_invoke(cluster, event, lamport))
            changed: List[str] = []
            key = (digests[-1], event.event_id)
            entry = transitions.get(key) if transitions is not None else None
            if entry is not None:
                entry_rdigests, combined_digest, tdigest = entry
                for rid, digest in entry_rdigests.items():
                    if digest != rdigests[rid]:
                        rdigests[rid] = digest
                        changed.append(rid)
                    # _invoke invalidated the touched replica's host cache;
                    # by the memo assumption the memoised transition value
                    # is its current digest.
                    hosts[rid].digest_cache = digest
                cluster._transport_digest_cache = tdigest
                cluster.digest_hits += 1
                digests.append(combined_digest)
            else:
                for rid in rids:
                    digest = cluster.replica_state_digest(rid)
                    if digest != rdigests[rid]:
                        rdigests[rid] = digest
                        changed.append(rid)
                if event.is_sync:
                    tdigest = cluster.transport_digest()
                combined_digest = combined()
                digests.append(combined_digest)
                if transitions is not None:
                    if len(transitions) >= self._digest_trie_limit:
                        transitions.clear()
                    transitions[key] = (dict(rdigests), combined_digest, tdigest)
            if observer is not None:
                observer.observe_write_set(event, changed)
        self._digest_replays += 1
        if (
            observer is not None
            and self._digest_exact
            and (self._digest_replays == 1 or self._digest_replays % 64 == 0)
        ):
            fresh = {
                rid: state_digest((hosts[rid].up, hosts[rid].rdl.canonical_state()))
                for rid in rids
            }
            if fresh != rdigests:
                # A subject mutated state some invalidation hook cannot see:
                # stop trusting every digest cache, permanently.
                self._digest_exact = False
                self._checkpoint_digests = None
                self._digest_trie.clear()
                cluster.digest_cache_enabled = False
                cluster.invalidate_digests()
                if self.metrics.enabled:
                    self.metrics.inc("digest.verify_failures")
        duration = time.perf_counter() - started
        after = transport.stats()
        self.last_transport_stats = tuple(n - b for n, b in zip(after, before))
        self.last_suppressed_count = len(cluster.suppressed_sends)
        outcome = InterleavingOutcome(
            interleaving=interleaving,
            event_results=results,
            states=cluster.states(),
            violations=[],
            duration_s=duration,
        )
        memo.record_replay(interleaving, outcome, digests)
        return outcome

    def _ensure_root(self, cache: PrefixSnapshotCache) -> _RootEntry:
        root = cache.root
        if root is None:
            cluster = self.cluster
            cluster.restore(self._checkpoint)
            replica_snaps: Dict[str, _ReplicaRecord] = {}
            for rid in cluster.replica_ids():
                host = cluster.host(rid)
                snap = cache.make_snap(host.rdl.state_view())
                replica_snaps[rid] = (snap, host.applied_syncs, host.sent_syncs)
            transport_snap = cache.make_snap(cluster.transport.snapshot())
            root = _RootEntry(cache.next_id(), replica_snaps, transport_snap)
            cache.set_root(root, cluster.transport.stats())
            # The live cluster state is borrowed by the snapshots just taken:
            # the replay loop materialises a private copy before mutating.
            self._live_rdl = {rid: rec[0] for rid, rec in replica_snaps.items()}
            self._live_transport = transport_snap
        return root

    def _replay_cached(self, interleaving: Interleaving) -> InterleavingOutcome:
        cache = self.prefix_cache
        cluster = self.cluster
        transport = cluster.transport
        started = time.perf_counter()
        events: Tuple[Event, ...] = (
            interleaving if type(interleaving) is tuple else tuple(interleaving)
        )
        count = len(events)

        root = self._ensure_root(cache)
        entry: Any = root
        depth = 0
        # Longest cached proper prefix of this interleaving: walk the entry
        # trie forward, one (parent_id, event_id) lookup per matched event.
        lookup = cache._entries.get
        limit = count - 1
        while depth < limit:
            child = lookup((entry.entry_id, events[depth].event_id))
            if child is None:
                break
            entry = child
            depth += 1

        # Assemble the matched prefix's state from the entry's parent chain:
        # entries are deltas, so the first record seen per replica walking
        # upward is that replica's newest snapshot (root fills in the rest).
        live = self._live_rdl
        hosts = cluster._hosts
        results: List[EventResult]
        if entry is root:
            results = []
            records = root.replica_snaps
            tsnap = root.transport_snap
        else:
            results = []
            records = {}
            tsnap = None
            node = entry
            while node is not root:
                results.append(node.result)
                nrid = node.rid
                if nrid is not None and nrid not in records:
                    records[nrid] = (node.snap, node.applied_syncs, node.sent_syncs)
                if tsnap is None:
                    tsnap = node.transport_snap
                node = node.parent
            results.reverse()
            for rid, record in root.replica_snaps.items():
                if rid not in records:
                    records[rid] = record
            if tsnap is None:
                tsnap = root.transport_snap

        # Restore only what differs from the live state, and even then only
        # by *adopting* the cached state by reference: the suffix loop below
        # materialises a private copy right before the first mutation of
        # each replica (copy-on-write), so a replay pays at most one state
        # copy per mutating event — and none for replicas it never mutates.
        for rid, (snap, applied, sent) in records.items():
            host = hosts[rid]
            if live.get(rid) is not snap:
                host.rdl.adopt(snap.data)
                live[rid] = snap
                # Adoption swaps RDL state behind the cluster's back; any
                # cached digest is for the state being replaced.
                host.digest_cache = None
            host.applied_syncs = applied
            host.sent_syncs = sent
        if self._live_transport is not tsnap:
            transport.restore_snapshot(tsnap.data)
            self._live_transport = tsnap
            cluster._transport_digest_cache = None

        stats = cache.stats
        stats.replays += 1
        if depth:
            stats.hits += 1
        stats.events_reused += depth
        stats.events_executed += count - depth

        cur_entry = entry
        suppressed_before = len(cluster.suppressed_sends)
        caching = cache.max_entries > 0
        kind_read = EventKind.READ
        kind_sync_req = EventKind.SYNC_REQ
        kind_exec_sync = EventKind.EXEC_SYNC
        append_result = results.append
        make_snap = cache.make_snap
        put = cache.put
        entries_dict = cache._entries
        metered = cache.meter is not None
        max_entries = cache.max_entries
        for position in range(depth, count):
            event = events[position]
            kind = event.kind
            is_sync = False
            if kind is kind_read:
                mutating = False
            else:
                mutating = True
                # UPDATE and EXEC_SYNC mutate the event's replica: if its
                # live state is borrowed from a cached snapshot, materialise
                # a private copy first.  SYNC_REQ leaves the sender's RDL
                # state untouched (it only enqueues a message and bumps
                # sent_syncs), so the sender's snap stays live and new
                # entries share it for free — unless the subject declares
                # ``mutates_on_push`` (shipping a payload advances durable
                # bookkeeping), in which case the sender materialises too.
                if kind is not kind_sync_req or getattr(
                    hosts[event.replica_id].rdl, "mutates_on_push", False
                ):
                    rid = event.replica_id
                    snap = live.get(rid)
                    if snap is not None:
                        hosts[rid].rdl.restore(snap.data)
                        hosts[rid].digest_cache = None
                        live[rid] = None
                is_sync = kind is kind_sync_req or kind is kind_exec_sync
                if is_sync:
                    self._live_transport = None
            result = _invoke(cluster, event, position + 1)
            append_result(result)
            if not caching or position >= limit:
                continue  # depth == count is never a *proper* prefix
            # No lookup needed before storing: the forward walk above ended
            # on a missing link, so no deeper node exists along this path,
            # and every subsequent parent id is freshly minted.
            key = (cur_entry.entry_id, event.event_id)
            if mutating:
                rid = event.replica_id
                host = hosts[rid]
                snap = live.get(rid)
                if snap is None:
                    # Snapshot by reference (outer-shallow): the live state
                    # is borrowed until the next mutation materialises it.
                    snap = make_snap(host.rdl.state_view())
                    live[rid] = snap
                tsnap = None
                if is_sync:
                    tsnap = self._live_transport
                    if tsnap is None:
                        tsnap = make_snap(transport.snapshot())
                        self._live_transport = tsnap
                cur_entry = _CacheEntry(
                    cache.next_id(),
                    key,
                    cur_entry,
                    result,
                    rid,
                    snap,
                    host.applied_syncs,
                    host.sent_syncs,
                    tsnap,
                )
            else:
                cur_entry = _CacheEntry(
                    cache.next_id(), key, cur_entry, result, None, None, 0, 0, None
                )
            # Unmetered inserts into a non-full cache skip put()'s charging
            # and eviction machinery; stats.entries is reconciled below.
            if metered or len(entries_dict) >= max_entries:
                put(cur_entry)
            else:
                entries_dict[key] = cur_entry
        if caching:
            stats.entries = len(entries_dict)

        # Cached replays never call restore(), so the suppressed-send log
        # persists across them; this replay's share is the suffix delta.
        self.last_suppressed_count = len(cluster.suppressed_sends) - suppressed_before
        base_sent, base_dropped, base_delivered, base_duplicated = cache.baseline
        self.last_transport_stats = (
            transport.sent_count - base_sent,
            transport.dropped_count - base_dropped,
            transport.delivered_count - base_delivered,
            transport.duplicated_count - base_duplicated,
        )
        duration = time.perf_counter() - started
        # Final states are captured as copy-on-write views and evaluated
        # lazily: the views' containers are never mutated in place again
        # (every later mutation materialises fresh containers first), so
        # the thunk reads stable data whenever an assertion asks.  A replica
        # whose live state is borrowed already has a stable view — its snap.
        views = {}
        for rid, host in hosts.items():
            rdl = host.rdl
            snap = live.get(rid)
            views[rid] = (
                type(rdl),
                snap.data if snap is not None else rdl.state_view(),
            )
        return InterleavingOutcome(
            interleaving=interleaving,
            event_results=results,
            states=lambda: _states_from_views(views),
            violations=[],
            duration_s=duration,
        )
