"""The replay engine: execute interleavings against checkpointed replicas.

For each interleaving (paper section 4.3) the engine:

1. restores every replica to the checkpointed initial state (and clears the
   transport), so interleavings cannot affect each other;
2. re-invokes the recorded events in the interleaving's order, catching RDL
   errors — a failing op is *data* (it feeds failed-ops pruning), not an
   engine failure;
3. runs the registered per-interleaving assertions;
4. reports an :class:`InterleavingOutcome`.

Two executors enforce the event order:

* :class:`SequentialExecutor` — the default: events run in-line in
  interleaving order (deterministic and fast; correct because the simulated
  cluster is single-process).
* :class:`LockSteppedExecutor` — one worker thread per replica, released in
  event order by the Redis-backed distributed lock
  (:class:`~repro.redisim.lock.SequenceGate`) exactly as the paper's
  middleware orders events across real machines.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ReplayError
from repro.core.events import Event, EventKind, assign_lamport
from repro.core.interleavings import Interleaving
from repro.crdt.base import CRDTError
from repro.net.cluster import Cluster
from repro.rdl.base import RDLError
from repro.redisim.farm import RedisimFarm
from repro.redisim.lock import SequenceGate


@dataclass
class EventResult:
    """What happened when one event replayed."""

    event: Event
    lamport: int
    ok: bool
    result: Any = None
    error: Optional[str] = None


@dataclass
class InterleavingOutcome:
    """The full result of replaying one interleaving."""

    interleaving: Interleaving
    event_results: List[EventResult]
    states: Dict[str, Any]
    violations: List[str]
    duration_s: float

    @property
    def violated(self) -> bool:
        return bool(self.violations)

    @property
    def failed_ops(self) -> List[EventResult]:
        return [res for res in self.event_results if not res.ok]

    def reads(self) -> Dict[str, Any]:
        """event_id -> result for every READ event (what the app observed)."""
        return {
            res.event.event_id: res.result
            for res in self.event_results
            if res.event.kind == EventKind.READ
        }


#: An assertion takes the outcome-so-far (results + final states) and returns
#: a violation message, or None when satisfied.
Assertion = Callable[["InterleavingOutcome"], Optional[str]]


class SequentialExecutor:
    """Run the events of an interleaving in-line, in order."""

    def run(self, cluster: Cluster, interleaving: Interleaving) -> List[EventResult]:
        results: List[EventResult] = []
        for stamped in assign_lamport(interleaving):
            results.append(_invoke(cluster, stamped.event, stamped.lamport))
        return results


class LockSteppedExecutor:
    """One worker per replica; the distributed lock releases them in order.

    Demonstrates (and tests) the paper's Redis-mutex ordering mechanism: each
    worker owns the events of one replica and may only execute its next event
    when the shared cursor — maintained under the Redlock mutex on a farm of
    redisim instances — reaches that event's global position.
    """

    def __init__(self, farm: Optional[RedisimFarm] = None, timeout_s: float = 30.0) -> None:
        self.farm = farm or RedisimFarm(size=3, name_prefix="erpi-lock")
        self.timeout_s = timeout_s
        self._session_counter = 0

    def run(self, cluster: Cluster, interleaving: Interleaving) -> List[EventResult]:
        self._session_counter += 1
        gate = SequenceGate(self.farm, session_id=f"replay-{self._session_counter}")
        stamped = list(assign_lamport(interleaving))
        slots: List[Optional[EventResult]] = [None] * len(stamped)
        per_replica: Dict[str, List[int]] = {}
        for position, item in enumerate(stamped):
            per_replica.setdefault(item.event.replica_id, []).append(position)
        errors: List[BaseException] = []

        def worker(positions: List[int]) -> None:
            try:
                for position in positions:
                    gate.wait_for_turn(position, timeout_s=self.timeout_s)
                    item = stamped[position]
                    slots[position] = _invoke(cluster, item.event, item.lamport)
                    gate.complete_turn(position)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(positions,), daemon=True)
            for positions in per_replica.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.timeout_s * (len(stamped) + 1))
        if errors:
            raise ReplayError(f"lock-stepped replay failed: {errors[0]!r}") from errors[0]
        if any(slot is None for slot in slots):
            raise ReplayError("lock-stepped replay did not complete every event")
        return [slot for slot in slots if slot is not None]


def _invoke(cluster: Cluster, event: Event, lamport: int) -> EventResult:
    """Re-invoke one recorded event against the cluster."""
    try:
        if event.kind == EventKind.SYNC_REQ:
            result = cluster.send_sync(event.from_replica, event.to_replica)
        elif event.kind == EventKind.EXEC_SYNC:
            result = cluster.execute_sync(event.from_replica, event.to_replica)
        else:
            rdl = cluster.rdl(event.replica_id)
            method = getattr(rdl, event.op_name, None)
            if method is None or not callable(method):
                raise ReplayError(
                    f"replica {event.replica_id!r} has no method {event.op_name!r}"
                )
            result = method(*event.args, **event.kwargs_dict())
        return EventResult(event=event, lamport=lamport, ok=True, result=result)
    except (RDLError, CRDTError, KeyError, IndexError, ValueError) as exc:
        # The library (or the data structure beneath it) rejected the op
        # under this ordering: that is exactly the kind of behaviour ER-pi
        # exists to surface.  Record it as a failed op and keep replaying.
        return EventResult(
            event=event, lamport=lamport, ok=False, error=f"{type(exc).__name__}: {exc}"
        )


class ReplayEngine:
    """Checkpoint/replay/assert driver over a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        executor: Optional[Any] = None,
    ) -> None:
        self.cluster = cluster
        self.executor = executor or SequentialExecutor()
        self._checkpoint: Optional[Dict[str, Any]] = None

    def checkpoint(self) -> None:
        """Snapshot the replicas' current states as the replay baseline."""
        self._checkpoint = self.cluster.checkpoint()

    def replay(
        self,
        interleaving: Interleaving,
        assertions: Sequence[Assertion] = (),
    ) -> InterleavingOutcome:
        """Replay one interleaving from the checkpoint and run assertions."""
        if self._checkpoint is None:
            raise ReplayError("checkpoint() must be called before replay()")
        self.cluster.restore(self._checkpoint)
        started = time.perf_counter()
        event_results = self.executor.run(self.cluster, interleaving)
        duration = time.perf_counter() - started
        outcome = InterleavingOutcome(
            interleaving=interleaving,
            event_results=event_results,
            states=self.cluster.states(),
            violations=[],
            duration_s=duration,
        )
        for assertion in assertions:
            message = assertion(outcome)
            if message is not None:
                outcome.violations.append(message)
        return outcome

    def restore(self) -> None:
        """Reset the cluster to the checkpoint (used after the final replay)."""
        if self._checkpoint is not None:
            self.cluster.restore(self._checkpoint)
