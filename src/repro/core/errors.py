"""Exceptions raised by the ER-pi core."""


class ErPiError(Exception):
    """Base class for ER-pi failures."""


class RecordingError(ErPiError):
    """Event capture failed (misuse of start/end, unknown replica, ...)."""


class ReplayError(ErPiError):
    """An interleaving could not be replayed (engine-level failure, distinct
    from an op that merely failed inside the RDL — those are data)."""


class ConstraintError(ErPiError):
    """A developer-provided pruning constraint is malformed."""


class ResourceExhausted(ErPiError):
    """A simulated resource budget was exceeded (the "crash" of the paper's
    succeed-or-crash micro-benchmark, Figure 10)."""
