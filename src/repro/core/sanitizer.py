"""Differential soundness sanitizer for pruning and cached replay.

ER-pi's headline guarantee — every interleaving it *skips* is equivalent to
one it replayed — rests on two mechanisms that are sound by construction on
paper but not self-checking in code:

* the four pruning algorithms (``repro.core.pruning``) merge interleavings
  into equivalence classes and replay one representative per class;
* prefix-cache-accelerated replay (``repro.core.replay``) restores cached
  event-prefix snapshots instead of re-executing the prefix.

This module cross-validates both against ground truth (a from-scratch
replay), in the spirit of MET's model-checked oracle and Replication-Aware
Linearizability's "skipped member ≡ replayed representative" obligation:

* **class sampling** — every pruner records, per equivalence class, its
  representative plus a seeded reservoir sample of up to K skipped members
  (:class:`~repro.core.pruning.base.ClassSampler`); :meth:`Sanitizer.finish`
  replays representative and members fresh and asserts the observables the
  class key promises to preserve are byte-identical (compared via
  :func:`~repro.core.assertions._freeze` digests of the observable states);
* **shadow replay** — an online mode where a configurable fraction of
  cache-accelerated replays are immediately re-replayed from scratch and
  diffed field by field (:class:`ShadowReplayChecker`);
* **Datalog facts** — every divergence is recorded as
  ``divergence(class_key, rep_id, member_id, field)`` in an
  :class:`~repro.datalog.store.InterleavingStore`, so violations are
  queryable and exportable alongside the interleavings themselves.

What "observable" means depends on the pruner, because each algorithm
promises a different equivalence:

* replica-specific — the scoped replica's final state, reads and failed ops;
* read-scoped — the scoped replica's observations up to its last READ;
* independence / failed-ops / grouping — every replica's final state, every
  READ result, and the set of failed event ids (global equivalence).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.assertions import _freeze
from repro.core.events import EventKind
from repro.core.interleavings import Interleaving, group_events, interleaving_stream
from repro.core.pruning import (
    EventGroupPruner,
    Pruner,
    ReadScopedPruner,
    ReplicaSpecificPruner,
    StateMemoPruner,
)
from repro.core.replay import InterleavingOutcome, ReplayEngine


def interleaving_id(interleaving: Interleaving) -> str:
    """A compact stable identifier: the event ids joined with ``|``."""
    return "|".join(event.event_id for event in interleaving)


def _short_key(class_key: Hashable, limit: int = 120) -> str:
    text = repr(class_key)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# --------------------------------------------------------------- observables


def outcome_observables(outcome: InterleavingOutcome) -> Dict[str, Hashable]:
    """The global observable digest of one replay: every replica's final
    state, every READ result, and the set of failed event ids."""
    fields: Dict[str, Hashable] = {}
    for rid, state in outcome.states.items():
        fields[f"state[{rid}]"] = _freeze(state)
    failed: List[str] = []
    for res in outcome.event_results:
        if res.event.kind is EventKind.READ:
            fields[f"read[{res.event.event_id}]"] = _freeze(res.result)
        if not res.ok:
            failed.append(res.event.event_id)
    fields["failed_ops"] = frozenset(failed)
    return fields


def scoped_observables(
    pruner: Pruner, outcome: InterleavingOutcome
) -> Dict[str, Hashable]:
    """The observables ``pruner``'s equivalence actually promises to preserve."""
    if isinstance(pruner, ReadScopedPruner):
        return _read_scoped_observables(pruner.replica_id, outcome)
    if isinstance(pruner, ReplicaSpecificPruner):
        return _replica_observables(pruner.replica_id, outcome)
    if isinstance(pruner, StateMemoPruner):
        # A memo class shares the post-prefix state and the suffix, but its
        # members reach that state along *different* prefixes, so prefix
        # READ results legitimately differ.  The digest equivalence itself
        # promises exactly the final states; compare those.
        return {
            f"state[{rid}]": _freeze(state)
            for rid, state in outcome.states.items()
        }
    return outcome_observables(outcome)


def _replica_observables(
    replica_id: str, outcome: InterleavingOutcome
) -> Dict[str, Hashable]:
    fields: Dict[str, Hashable] = {
        f"state[{replica_id}]": _freeze(outcome.states.get(replica_id))
    }
    failed: List[str] = []
    for res in outcome.event_results:
        if res.event.replica_id != replica_id:
            continue
        if res.event.kind is EventKind.READ:
            fields[f"read[{res.event.event_id}]"] = _freeze(res.result)
        if not res.ok:
            failed.append(res.event.event_id)
    fields[f"failed_ops[{replica_id}]"] = frozenset(failed)
    return fields


def _read_scoped_observables(
    replica_id: str, outcome: InterleavingOutcome
) -> Dict[str, Hashable]:
    """Observations at ``replica_id`` up to (and including) its last READ.

    The read-scoped class key only constrains the replica's history up to
    its final read — events ordered after it may legitimately differ across
    class members, so the final state is *not* comparable.  Without any READ
    the key falls back to the full observation signature, and the
    replica-specific observables apply.
    """
    last_read = -1
    for position, res in enumerate(outcome.event_results):
        event = res.event
        if event.replica_id == replica_id and event.kind is EventKind.READ:
            last_read = position
    if last_read < 0:
        return _replica_observables(replica_id, outcome)
    fields: Dict[str, Hashable] = {}
    failed: List[str] = []
    for res in outcome.event_results[: last_read + 1]:
        event = res.event
        if event.replica_id != replica_id:
            continue
        if event.kind is EventKind.READ:
            fields[f"read[{event.event_id}]"] = _freeze(res.result)
        if not res.ok:
            failed.append(event.event_id)
    fields[f"failed_ops[{replica_id}]"] = frozenset(failed)
    return fields


def diff_observables(
    expected: Dict[str, Hashable], actual: Dict[str, Hashable]
) -> List[str]:
    """Field names on which the two observable digests disagree."""
    return sorted(
        name
        for name in set(expected) | set(actual)
        if expected.get(name, _MISSING) != actual.get(name, _MISSING)
    )


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return "<missing>"


_MISSING = _Missing()


# --------------------------------------------------------------- divergences


@dataclass(frozen=True)
class Divergence:
    """One broken equivalence: a skipped member (or cached replay) whose
    observables differ from its representative (or fresh replay)."""

    source: str  # pruner name, or "prefix_cache"
    class_key: str
    rep_id: str
    member_id: str
    field: str
    detail: str = ""

    def describe(self) -> str:
        return (
            f"[{self.source}] {self.field} diverged: member {self.member_id} "
            f"!= representative {self.rep_id} (class {self.class_key})"
        )


class DivergenceLog:
    """Thread-safe divergence collector, optionally mirrored into Datalog.

    Every recorded divergence becomes a ``divergence(class_key, rep_id,
    member_id, field)`` fact when a store is attached, so soundness
    violations are queryable (and exportable) like any other relation.
    """

    def __init__(self, store: Optional[Any] = None) -> None:
        self._lock = threading.Lock()
        self._divergences: List[Divergence] = []
        self.store = store

    def record(self, divergence: Divergence) -> None:
        with self._lock:
            self._divergences.append(divergence)
            if self.store is not None:
                self.store.persist_divergence(
                    divergence.class_key,
                    divergence.rep_id,
                    divergence.member_id,
                    divergence.field,
                )

    @property
    def divergences(self) -> List[Divergence]:
        with self._lock:
            return list(self._divergences)

    def __len__(self) -> int:
        with self._lock:
            return len(self._divergences)


@dataclass
class SanitizerReport:
    """Everything one sanitized run learned about its own soundness."""

    divergences: List[Divergence] = field(default_factory=list)
    classes_checked: int = 0
    members_checked: int = 0
    fresh_replays: int = 0
    shadow_checks: int = 0
    overhead_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [
            "sanitizer: "
            + ("OK" if self.ok else f"{len(self.divergences)} DIVERGENCE(S)"),
            f"  classes sampled: {self.classes_checked} "
            f"({self.members_checked} skipped members replayed)",
            f"  shadow replays of cached results: {self.shadow_checks}",
            f"  fresh replays: {self.fresh_replays}, "
            f"overhead: {self.overhead_s * 1e3:.1f} ms",
        ]
        for divergence in self.divergences[:5]:
            lines.append(f"  {divergence.describe()}")
        if len(self.divergences) > 5:
            lines.append(f"  ... and {len(self.divergences) - 5} more")
        return "\n".join(lines)


# ------------------------------------------------------- online shadow check


class ShadowReplayChecker:
    """Cross-check a fraction of cache-accelerated replays against scratch.

    Attached to a :class:`~repro.core.replay.ReplayEngine` (its
    ``sanitizer`` slot), which calls :meth:`maybe_check` after every replay
    that actually went through the prefix cache.  With probability ``rate``
    the checker forces the cached outcome's lazy state views, replays the
    same interleaving from scratch, and records a divergence per observable
    field that disagrees.  Thread-safe: parallel worker engines may share
    one checker.
    """

    SOURCE = "prefix_cache"

    def __init__(
        self,
        rate: float = 0.1,
        seed: int = 0,
        log: Optional[DivergenceLog] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("shadow-replay rate must be a probability")
        self.rate = rate
        self.log = log or DivergenceLog()
        self._rng = random.Random(f"{seed}:shadow-replay")
        self._lock = threading.Lock()
        self.checks = 0
        self.overhead_s = 0.0

    def maybe_check(
        self,
        engine: ReplayEngine,
        interleaving: Interleaving,
        outcome: InterleavingOutcome,
    ) -> bool:
        """Shadow-replay ``interleaving`` with probability ``rate``.

        Returns True when a check ran (regardless of verdict).
        """
        if self.rate <= 0.0:
            return False
        with self._lock:
            roll = self._rng.random()
        if roll >= self.rate:
            return False
        started = time.perf_counter()
        # Force the cached outcome's lazy state thunk *before* the shadow
        # replay mutates the cluster, then diff against ground truth.
        cached = outcome_observables(outcome)
        fresh = engine.replay_fresh(interleaving)
        truth = outcome_observables(fresh)
        il_id = interleaving_id(interleaving)
        for name in diff_observables(truth, cached):
            self.log.record(
                Divergence(
                    source=self.SOURCE,
                    class_key=f"{self.SOURCE}#{il_id}",
                    rep_id="fresh",
                    member_id="cached",
                    field=name,
                    detail=(
                        f"cached={cached.get(name, _MISSING)!r} "
                        f"fresh={truth.get(name, _MISSING)!r}"
                    ),
                )
            )
        elapsed = time.perf_counter() - started
        with self._lock:
            self.checks += 1
            self.overhead_s += elapsed
        return True


# ------------------------------------------------------------- orchestration


class Sanitizer:
    """Owns one run's divergence log, shadow checker and class sampling.

    Usage (what :class:`~repro.core.session.ErPi` and the bench harness do)::

        sanitizer = Sanitizer(rate=0.25, sample_k=2)
        sanitizer.watch_engine(engine)          # online shadow replays
        sanitizer.watch_pruners(pipeline.pruners)  # class sampling
        ... explore ...
        report = sanitizer.finish(engine)       # differential class replay
    """

    def __init__(
        self,
        rate: float = 0.1,
        sample_k: int = 2,
        seed: int = 0,
        store: Optional[Any] = None,
    ) -> None:
        self.sample_k = sample_k
        self.seed = seed
        self.log = DivergenceLog(store=store)
        self.checker = ShadowReplayChecker(rate=rate, seed=seed, log=self.log)
        self._watched: List[Pruner] = []

    # ------------------------------------------------------------- wiring

    def watch_engine(self, engine: ReplayEngine) -> None:
        """Attach the online shadow checker to ``engine``."""
        engine.sanitizer = self.checker

    def watch_pruners(self, pruners: Iterable[Pruner]) -> None:
        """Enable class sampling on ``pruners`` and audit them at finish."""
        for offset, pruner in enumerate(pruners):
            pruner.enable_sampling(
                sample_k=self.sample_k, seed=self.seed + len(self._watched) + offset
            )
            self._watched.append(pruner)

    def grouping_auditor(
        self,
        events: Sequence[Any],
        spec_groups: Sequence[Tuple[str, str]] = (),
    ) -> EventGroupPruner:
        """An Algorithm-1 auditor over the generated candidate stream.

        Grouping acts pre-generation in the production path, so nothing is
        merged post-hoc there; auditing its key over the generated stream
        closes the loop for all four algorithms uniformly (and would catch a
        regression that let scattered sync pairs into the stream).
        """
        auditor = EventGroupPruner(spec_groups=tuple(spec_groups))
        auditor.prepare(tuple(events))
        self.watch_pruners([auditor])
        return auditor

    @property
    def watched_pruners(self) -> List[Pruner]:
        return list(self._watched)

    def reset_pruners(self) -> None:
        """Forget watched pruners (a new Start/End window builds its own)."""
        self._watched = []

    # ------------------------------------------------------------- verdicts

    def finish(self, engine: ReplayEngine) -> SanitizerReport:
        """Differentially replay every sampled class and build the report.

        ``engine`` provides ground truth via
        :meth:`~repro.core.replay.ReplayEngine.replay_fresh`; its checkpoint
        must still be the one the candidates were generated against.

        Observed engines get one ``sanitize`` span wrapping the whole
        differential pass (the fresh replays inside it emit their own
        ``replay:fresh`` child spans) and a ``sanitizer.divergences`` gauge.
        """
        tracer = engine.tracer
        span = tracer.begin("sanitize") if tracer.enabled else None
        started = time.perf_counter()
        memo: Dict[Tuple[str, ...], Dict[str, Any]] = {}
        fresh_replays = 0
        classes_checked = 0
        members_checked = 0

        def outcome_of(interleaving: Interleaving) -> InterleavingOutcome:
            nonlocal fresh_replays
            cache_key = tuple(event.event_id for event in interleaving)
            hit = memo.get(cache_key)
            if hit is None:
                fresh_replays += 1
                hit = {"outcome": engine.replay_fresh(interleaving)}
                memo[cache_key] = hit
            return hit["outcome"]

        for pruner in self._watched:
            sampler = pruner.sampler
            if sampler is None:
                continue
            for class_key, representative, members in sampler.classes():
                if not members:
                    continue
                classes_checked += 1
                rep_outcome = outcome_of(representative)
                rep_obs = scoped_observables(pruner, rep_outcome)
                rep_id = interleaving_id(representative)
                for member in members:
                    members_checked += 1
                    member_obs = scoped_observables(pruner, outcome_of(member))
                    for name in diff_observables(rep_obs, member_obs):
                        self.log.record(
                            Divergence(
                                source=pruner.name,
                                class_key=f"{pruner.name}#{_short_key(class_key)}",
                                rep_id=rep_id,
                                member_id=interleaving_id(member),
                                field=name,
                                detail=(
                                    f"rep={rep_obs.get(name, _MISSING)!r} "
                                    f"member={member_obs.get(name, _MISSING)!r}"
                                ),
                            )
                        )
        elapsed = time.perf_counter() - started
        report = SanitizerReport(
            divergences=self.log.divergences,
            classes_checked=classes_checked,
            members_checked=members_checked,
            fresh_replays=fresh_replays,
            shadow_checks=self.checker.checks,
            overhead_s=self.checker.overhead_s + elapsed,
        )
        if engine.metrics.enabled:
            engine.metrics.set_gauge("sanitizer.divergences", len(report.divergences))
        if span is not None:
            tracer.end(
                span,
                classes=classes_checked,
                members=members_checked,
                divergences=len(report.divergences),
            )
        return report


# ------------------------------------------------------------- offline entry


def sanitize_pruning(
    events: Sequence[Any],
    pruners: Sequence[Pruner],
    engine: ReplayEngine,
    spec_groups: Sequence[Tuple[str, str]] = (),
    order: str = "lexicographic",
    cap: int = 300,
    sample_k: int = 2,
    seed: int = 0,
    store: Optional[Any] = None,
    include_grouping: bool = True,
) -> SanitizerReport:
    """The offline form of the sanitizer's invariant.

    Enumerates up to ``cap`` interleavings of the (grouped) events, buckets
    them under every pruner's class key, reservoir-samples up to ``sample_k``
    skipped members per class, replays representative and members fresh on
    ``engine`` (whose checkpoint must match the events' initial state), and
    reports every observable field on which a class disagrees with its
    representative.

    The passed ``pruners`` are consumed: their seen-sets and samplers end up
    reflecting this stream.  Pass freshly constructed pruners.
    """
    grouping = group_events(tuple(events), tuple(spec_groups))
    sanitizer = Sanitizer(rate=0.0, sample_k=sample_k, seed=seed, store=store)
    sanitizer.watch_pruners(pruners)
    if include_grouping:
        sanitizer.grouping_auditor(events, spec_groups)
    audited = sanitizer.watched_pruners
    for interleaving in interleaving_stream(grouping.units, order=order, limit=cap):
        for pruner in audited:
            pruner.is_redundant(interleaving)
    return sanitizer.finish(engine)
