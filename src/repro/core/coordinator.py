"""Checkpointed, lease-based hunt coordination (the fault-tolerant hunt).

:class:`~repro.core.procpool.ProcessParallelExplorer` already survives a
worker crash — by quarantining the dead worker's shards and ending the hunt
``crashed``.  :class:`CoordinatedHuntExplorer` turns that same shared-nothing
pool into a service that survives its *own infrastructure* failing:

* every worker slot holds a **time-bounded shard lease**, acquired through
  the :mod:`repro.redisim` Redlock farm (the paper coordinated replay
  ordering over exactly this kind of lock service).  Workers heartbeat over
  the result queue; the coordinator renews their leases (Redlock
  ``compare-and-expire`` on a quorum, drift-aware per
  :class:`~repro.redisim.lock.DistributedLock`);
* a lease that expires because its worker crashed — or was SIGKILLed
  mid-batch — is **re-leased**: the slot's process is fenced (terminated if
  somehow still alive) and a replacement worker is spawned for the same
  shard set after an exponential backoff, with bounded retries;
* the same fencing machinery powers **work stealing**: once the fastest
  shard finishes, a live worker trailing the lead by ``steal_margin``
  stream positions has its lease stolen — fenced and respawned at the
  commit watermark so the trailing suffix runs at full speed — and
  index-deduplicated commits keep the verdict map bit-for-bit identical;
* committed verdicts are checkpointed to a durable
  :class:`~repro.core.journal.HuntJournal` *as they commit*, so a killed
  parent can ``hunt --resume`` the journal: committed verdicts are replayed
  from the checkpoint, workers skip the committed prefix, and the hunt
  continues to the same final verdict map as an uninterrupted run;
* the degradation ladder: lock farm unreachable (no quorum) → leases fall
  back to an in-process :class:`LocalLeaseTable` with a loud ``degraded``
  Datalog fact and metric; a slot that keeps dying past its re-lease budget
  → **the shard is quarantined, not the hunt** (the coordinator enumerates
  the dead slot's candidates itself and commits ``quarantine`` verdicts for
  them, letting every other shard finish).

Soundness of re-leased commits: candidate enumeration is a deterministic
function of the recorded events, every worker (original or replacement)
derives the identical stream and shard ownership, and the parent still
commits strictly in global candidate order, deduplicating re-delivered
results by candidate index (first delivery wins; replays are deterministic,
so duplicates are byte-identical).  A hunt whose worker was SIGKILLed
mid-batch therefore terminates with a verdict map bit-for-bit equal to an
uninterrupted serial hunt's.
"""

from __future__ import annotations

import pickle
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ResourceExhausted
from repro.core.explorers import DEFAULT_CAP, ExplorationResult, Explorer
from repro.core.journal import HuntJournal, JournaledOutcome
from repro.core.procpool import (
    PrefixShardRouter,
    ProcessParallelExplorer,
    QuietWorkerDetector,
    WorkerTask,
    _stream_width,
    auto_prefix_len,
)
from repro.core.replay import Assertion, InterleavingOutcome, ReplayEngine
from repro.faults.quarantine import QuarantinedReplay
from repro.obs.metrics import MetricsRegistry
from repro.redisim.farm import RedisimFarm
from repro.redisim.lock import DistributedLock

# ----------------------------------------------------------------- leases


class RedlockLeaseTable:
    """Shard leases as Redlock mutexes over a redisim farm.

    One :class:`~repro.redisim.lock.DistributedLock` per worker slot, keyed
    ``erpi:hunt:<hunt_id>:shard:<slot>``.  Acquisition, renewal and expiry
    all follow the drift-aware Redlock validity rules; ``reachable`` reports
    whether a quorum of lock instances is still up (the degradation
    trigger).
    """

    kind = "redlock"

    def __init__(
        self,
        farm: RedisimFarm,
        hunt_id: str,
        ttl_s: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.farm = farm
        self.hunt_id = hunt_id
        self.ttl_ms = max(int(ttl_s * 1000), 1)
        self.clock = clock
        self._locks: Dict[int, DistributedLock] = {}

    def _key(self, slot: int) -> str:
        return f"erpi:hunt:{self.hunt_id}:shard:{slot}"

    def acquire(self, slot: int) -> bool:
        lock = DistributedLock(
            self.farm, self._key(slot), ttl_ms=self.ttl_ms, clock=self.clock
        )
        if lock.try_acquire():
            self._locks[slot] = lock
            return True
        return False

    def renew(self, slot: int) -> bool:
        lock = self._locks.get(slot)
        return lock is not None and lock.held and lock.renew()

    def held(self, slot: int) -> bool:
        lock = self._locks.get(slot)
        return lock is not None and lock.held

    def release(self, slot: int) -> None:
        lock = self._locks.pop(slot, None)
        if lock is not None and lock.held:
            lock.release()

    def release_all(self) -> None:
        for slot in list(self._locks):
            self.release(slot)

    def reachable(self) -> bool:
        return len(self.farm.healthy_instances()) >= self.farm.quorum


class LocalLeaseTable:
    """In-process lease table: the degraded fallback when the lock farm has
    no quorum.  Same interface, plain deadlines on the coordinator's clock —
    still enforces TTL semantics, just without distribution."""

    kind = "local"

    def __init__(
        self, ttl_s: float, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self.ttl_s = ttl_s
        self.clock = clock or time.monotonic
        self._deadlines: Dict[int, float] = {}

    def acquire(self, slot: int) -> bool:
        if slot in self._deadlines and self._deadlines[slot] > self.clock():
            return False
        self._deadlines[slot] = self.clock() + self.ttl_s
        return True

    def renew(self, slot: int) -> bool:
        if self.held(slot):
            self._deadlines[slot] = self.clock() + self.ttl_s
            return True
        return False

    def held(self, slot: int) -> bool:
        deadline = self._deadlines.get(slot)
        return deadline is not None and self.clock() < deadline

    def release(self, slot: int) -> None:
        self._deadlines.pop(slot, None)

    def release_all(self) -> None:
        self._deadlines.clear()

    def reachable(self) -> bool:
        return True


# ------------------------------------------------------------ coordinator


class CoordinatedHuntExplorer(ProcessParallelExplorer):
    """A process-pool hunt with durable checkpoints and shard re-leasing.

    Construction mirrors :class:`ProcessParallelExplorer` plus the
    coordination knobs; ``journal`` (a :class:`HuntJournal`) makes commits
    durable and, when the journal already holds commits, turns the run into
    a resume.  ``farm`` supplies the Redlock lease substrate (a private
    3-instance farm is built when omitted)."""

    def __init__(
        self,
        base: Explorer,
        task: WorkerTask,
        workers: int = 2,
        journal: Optional[HuntJournal] = None,
        farm: Optional[RedisimFarm] = None,
        lease_ttl_s: float = 5.0,
        heartbeat_interval_s: Optional[float] = None,
        max_releases: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        checkpoint_every: int = 64,
        hunt_id: Optional[str] = None,
        steal_margin: Optional[int] = 512,
        **kwargs: Any,
    ) -> None:
        super().__init__(
            base,
            task,
            workers=workers,
            heartbeat_interval_s=(
                heartbeat_interval_s
                if heartbeat_interval_s is not None
                else lease_ttl_s / 3.0
            ),
            **kwargs,
        )
        self.journal = journal
        self.lease_ttl_s = lease_ttl_s
        self.max_releases = max(0, max_releases)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.checkpoint_every = max(1, checkpoint_every)
        #: Work stealing: when a live, heartbeating worker trails the lead
        #: (the furthest final flush) by at least this many stream
        #: positions, its lease is stolen — the slot is fenced and respawned
        #: at the commit watermark through the existing re-lease machinery —
        #: so a skewed shard's tail does not serialise the hunt.  ``None``
        #: or 0 disables stealing; each slot is stolen at most once per run.
        self.steal_margin = steal_margin
        if hunt_id is None and journal is not None:
            hunt_id = journal.header.get("hunt", {}).get("hunt_id")
        self.hunt_id = hunt_id or uuid.uuid4().hex[:12]
        self.farm = farm if farm is not None else RedisimFarm(
            3, name_prefix=f"lease-{self.hunt_id}"
        )
        self.mode = f"{base.mode}+coord{workers}"
        # Lease machinery state.
        self._lease_table: Optional[object] = None
        self._leased: Set[int] = set()
        self._attempts: Dict[int, int] = {w: 1 for w in range(workers)}
        self._respawn_at: Dict[int, float] = {}
        self._abandoned: Set[int] = set()
        self._abandon_reasons: Dict[int, str] = {}
        self._degraded_reason: Optional[str] = None
        self._lease_log: List[Tuple[int, int, str]] = []
        self._checkpoint_seq = 0
        # Work-stealing state: last heartbeated stream position per slot,
        # slots already stolen from, and the steal count for the summary.
        self._progress: Dict[int, int] = {}
        self._stolen: Set[int] = set()
        self._steals = 0
        self._watermark = 0  # committed candidate indices below this
        # Parent-side owner stream (built lazily, only for abandoned slots).
        self._owner_candidates = None
        self._owner_router: Optional[PrefixShardRouter] = None
        self._owners: List[Optional[Tuple[int, Tuple[str, ...]]]] = []
        self._owner_exhausted = False
        self._owner_metrics: Optional[MetricsRegistry] = None
        # Resume state (filled from the journal's committed prefix).
        self._resumed: List[Dict[str, Any]] = (
            list(journal.commits) if journal is not None else []
        )

    # ------------------------------------------------------------- leases

    def _metric(self, name: str, value: int = 1) -> None:
        metrics = self.base.metrics
        if metrics.enabled:
            metrics.inc(name, value)

    def _record_lease(self, slot: int, status: str) -> None:
        attempt = self._attempts[slot]
        self._lease_log.append((slot, attempt, status))
        if self.journal is not None:
            self.journal.lease(slot, attempt, status)
        self._metric(f"coordinator.leases.{status}")

    def _degrade(self, component: str, reason: str) -> None:
        if self._degraded_reason is not None:
            return
        self._degraded_reason = f"{component}: {reason}"
        if self.journal is not None:
            self.journal.degraded(component, reason)
        metrics = self.base.metrics
        if metrics.enabled:
            metrics.inc("coordinator.degraded")
        tracer = self.base.tracer
        if tracer.enabled:
            tracer.end(tracer.begin("degraded"), component=component, reason=reason)

    def _make_lease_table(self) -> object:
        table = RedlockLeaseTable(
            self.farm, self.hunt_id, self.lease_ttl_s, clock=self.clock
        )
        if not table.reachable():
            self._degrade(
                "lock-farm",
                "no quorum of lock instances reachable; "
                "leases held in-process",
            )
            return LocalLeaseTable(self.lease_ttl_s, clock=self.clock)
        return table

    def _degrade_to_local(self, reason: str) -> None:
        """Migrate every live lease into the in-process fallback table."""
        self._degrade("lock-farm", reason)
        if isinstance(self._lease_table, LocalLeaseTable):
            return
        local = LocalLeaseTable(self.lease_ttl_s, clock=self.clock)
        for slot in list(self._leased):
            local.acquire(slot)
        self._lease_table = local

    def _arm_lease(self, slot: int, status: str = "acquired") -> None:
        table = self._lease_table
        if table is None:
            return
        tracer = self.base.tracer
        span = tracer.begin("lease") if tracer.enabled else None
        table.release(slot)
        ok = table.acquire(slot)
        if not ok and not table.reachable():
            self._degrade_to_local("lock farm lost quorum during acquisition")
            ok = self._lease_table.acquire(slot)
        if span is not None:
            tracer.end(span, slot=slot, status=status, ok=ok)
        if ok:
            self._leased.add(slot)
            self._record_lease(slot, status)

    def _on_ready(self, widx: int) -> None:
        # A replacement worker finished bootstrapping mid-run: its lease
        # starts now (bootstrap time must not eat the validity window).
        if widx not in self._leased and widx not in self._abandoned:
            self._arm_lease(
                widx, "acquired" if self._attempts[widx] == 1 else "re-leased"
            )

    def _on_heartbeat(self, widx: int, yields: int) -> None:
        self._progress[widx] = yields
        table = self._lease_table
        if table is None or widx not in self._leased:
            return
        tracer = self.base.tracer
        span = tracer.begin("renew") if tracer.enabled else None
        ok = table.renew(widx)
        if span is not None:
            tracer.end(span, slot=widx, ok=ok)
        if ok:
            self._metric("coordinator.leases.renewed")
            return
        if not table.reachable():
            self._degrade_to_local("lock farm lost quorum during renewal")
            self._lease_table.renew(widx)
            return
        # The lease genuinely lapsed (e.g. the coordinator was descheduled
        # past the TTL) but the worker is alive and beating: re-acquire the
        # now-free key rather than fencing a healthy worker.
        self._leased.discard(widx)
        self._arm_lease(widx, "re-acquired")

    # ------------------------------------------------------- crash & re-lease

    def _schedule_release(
        self, widx: int, reason: str, status: str = "expired"
    ) -> None:
        """Fence a dead/expired/stolen slot and queue its re-lease (with
        backoff), or abandon the shard once the retry budget is exhausted."""
        if widx in self._abandoned or widx in self._respawn_at:
            return
        proc = self._procs[widx]
        if proc.is_alive():
            proc.terminate()  # fencing: its lease is gone, so is its right to run
        self._leased.discard(widx)
        if self._lease_table is not None:
            self._lease_table.release(widx)
        self._record_lease(widx, status)
        attempt = self._attempts[widx]
        if attempt > self.max_releases:
            self._abandon(widx, reason)
            return
        backoff = min(
            self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s
        )
        self._attempts[widx] = attempt + 1
        self._respawn_at[widx] = self.clock() + backoff

    def _respawn_due(self) -> None:
        for widx in [
            w for w, at in self._respawn_at.items() if self.clock() >= at
        ]:
            del self._respawn_at[widx]
            tracer = self.base.tracer
            span = tracer.begin("re-lease") if tracer.enabled else None
            self._procs[widx] = self._spawn_worker(
                widx, skip_below=self._watermark, attempt=self._attempts[widx]
            )
            self._metric("coordinator.releases")
            if span is not None:
                tracer.end(
                    span,
                    slot=widx,
                    attempt=self._attempts[widx],
                    skip_below=self._watermark,
                )

    def _abandon(self, widx: int, reason: str) -> None:
        self._abandoned.add(widx)
        self._abandon_reasons[widx] = reason
        self._leased.discard(widx)
        self._record_lease(widx, "quarantined")
        self._metric("coordinator.shards.quarantined")

    def _dead_worker_index(self, finals, errors) -> Optional[int]:
        # Same EOF test as the base pool, but a slot that has already been
        # abandoned or is awaiting its backoff respawn is not "dead" — its
        # recovery is already in flight.
        for widx in sorted(self._eof):
            if (
                widx in finals
                or widx in errors
                or widx in self._abandoned
                or widx in self._respawn_at
            ):
                continue
            return widx
        return None

    def _check_leases(self) -> None:
        """Expired lease = crashed worker (it stopped heartbeating): fence
        and re-lease.  Only armed leases are checked, so a replacement still
        bootstrapping is never misdeclared."""
        table = self._lease_table
        if table is None:
            return
        for widx in list(self._leased):
            if widx in self._abandoned or widx in self._respawn_at:
                continue
            if not table.held(widx):
                if self._procs[widx].is_alive():
                    # Farm hiccup or a descheduled parent, not a dead worker.
                    self._leased.discard(widx)
                    self._arm_lease(widx, "re-acquired")
                else:
                    self._schedule_release(
                        widx, f"lease expired with worker {widx} dead"
                    )

    def _maybe_steal(self, finals: Dict[int, Dict[str, Any]]) -> None:
        """Steal the lease of a worker trailing the lead past the margin.

        Skew shows up once the fastest shard finishes: its final flush
        fixes the lead position, and a live laggard that has heartbeated at
        least once (no spurious steal before the first beat) and trails by
        ``steal_margin`` stream positions gets fenced and respawned at the
        commit watermark — running the stolen suffix at full speed on a
        fresh process.  Dedup-by-index keeps the verdict map identical no
        matter how the original's in-flight frames interleave with the
        thief's.
        """
        margin = self.steal_margin
        if not margin or not finals:
            return
        lead = max(flush["yields"] for flush in finals.values())
        for widx in range(self.workers):
            if (
                widx in finals
                or widx in self._abandoned
                or widx in self._respawn_at
                or widx in self._stolen
                or widx not in self._leased
            ):
                continue
            progress = self._progress.get(widx)
            if progress is None or lead - progress < margin:
                continue
            self._stolen.add(widx)
            self._steals += 1
            self._metric("coordinator.steals")
            self._schedule_release(
                widx,
                f"worker {widx} trailing the lead by "
                f"{lead - progress} stream positions",
                status="stolen",
            )

    # ------------------------------------------------- parent owner stream

    def _ensure_owner_stream(self) -> None:
        if self._owner_candidates is not None:
            return
        explorer, engine, assertions, _audit = self.task.build()
        # The owner stream must make byte-identical pruning decisions to the
        # workers' streams, so its pruners are bound the same way (the DPOR
        # pruner is a deterministic function of the schedule; the replay
        # memo never participates in stream-time pruning).
        explorer.bind_semantic((engine,), assertions)
        if self.base.metrics.enabled:
            self._owner_metrics = MetricsRegistry()
            explorer.metrics = self._owner_metrics
        prefix_len = self.prefix_len or auto_prefix_len(
            _stream_width(explorer), self.workers
        )
        self._owner_router = PrefixShardRouter(self.workers, prefix_len)
        self._owner_candidates = explorer.candidates()

    def _owner_of(self, index: int) -> Optional[Tuple[int, Tuple[str, ...]]]:
        """(owner slot, event ids) of global candidate ``index``; None when
        the stream (or the cap) ends first."""
        if index >= (self._cap or 0):
            return None
        self._ensure_owner_stream()
        while len(self._owners) <= index and not self._owner_exhausted:
            if len(self._owners) >= self._cap:
                break
            try:
                interleaving = next(self._owner_candidates, None)
            except ResourceExhausted:
                interleaving = None
            if interleaving is None:
                self._owner_exhausted = True
                break
            self._owners.append(
                (
                    self._owner_router.owner(interleaving),
                    tuple(event.event_id for event in interleaving),
                )
            )
        if index < len(self._owners):
            return self._owners[index]
        return None

    # ------------------------------------------------------------- explore

    def explore(
        self,
        engine: ReplayEngine,
        assertions: Sequence[Assertion],
        cap: int = DEFAULT_CAP,
        stop_on_violation: bool = True,
    ) -> ExplorationResult:
        started = time.perf_counter()
        tracer = self.base.tracer
        metrics = self.base.metrics
        progress = self.base.progress

        verdicts: Dict[str, str] = {}
        quarantined: List[QuarantinedReplay] = []
        violating: Optional[InterleavingOutcome] = None
        violation_messages: List[str] = []
        explored = 0
        parent_pruned = 0  # replay-time memo hits committed as prunes
        next_index = 0

        # ---- replay the journal's committed prefix (resume) -------------
        for record in self._resumed:
            verdict = record["verdict"]
            il_key = record["il"]
            next_index += 1
            if verdict == "pruned":
                # A memo hit committed by the previous incarnation: it
                # consumed a candidate index but was never explored.
                parent_pruned += 1
                if metrics.enabled:
                    metrics.inc("coordinator.commits.resumed")
                    metrics.inc("interleavings.pruned")
                    metrics.inc("pruned.state_memo")
                continue
            verdicts[il_key] = verdict
            explored += 1
            if metrics.enabled:
                metrics.inc("coordinator.commits.resumed")
                if verdict == "quarantine":
                    metrics.inc("interleavings.quarantined")
                else:
                    metrics.inc("interleavings.replayed")
            if verdict == "quarantine":
                quarantined.append(
                    QuarantinedReplay(
                        interleaving=tuple(il_key.split("|")) if il_key else (),
                        error_type=record.get("error", "unknown"),
                        message="(resumed from journal)",
                        traceback="",
                        fault_plan=self.base.fault_plan_description,
                    )
                )
            elif verdict == "violation":
                violating = JournaledOutcome(
                    tuple(il_key.split("|")) if il_key else (),
                    record.get("messages", ["(violation resumed from journal)"]),
                )
        self._watermark = next_index

        journal = self.journal
        if journal is not None:
            journal.reopen()

        if violating is not None and stop_on_violation:
            # The previous incarnation already found the bug; nothing to do.
            return self._finish(
                verdicts, quarantined, violating, explored, started,
                crashed=False, crash_reason=None, finals={},
                parent_pruned=parent_pruned,
            )

        if not self._started:
            self.prestart(cap=cap, stop_on_violation=stop_on_violation)
        elif cap != self._cap or stop_on_violation != self._stop_on_violation:
            raise ValueError(
                "prestarted pool was configured with different cap/stop settings"
            )
        self._lease_table = self._make_lease_table()
        for widx in range(self.workers):
            self._arm_lease(widx, "acquired")

        root = tracer.begin("explore") if tracer.enabled else None
        pending: Dict[int, Tuple[int, str, Any]] = {}
        finals: Dict[int, Dict[str, Any]] = {}
        errors: Dict[int, str] = {}
        crashed = False
        crash_reason: Optional[str] = None
        commits_since_checkpoint = 0

        self._go.set()
        detector = QuietWorkerDetector(
            grace_s=self.dead_worker_grace_s, clock=self.clock
        )
        try:
            done = False
            while not done:
                message = self._next_message(timeout=0.05)
                idle = message is None
                while message is not None:
                    self._dispatch(message, pending, finals, errors)
                    message = self._next_message(timeout=0.0)
                self._respawn_due()
                # ---- commit strictly in candidate order -----------------
                while True:
                    if next_index in pending:
                        index, kind, payload = pending.pop(next_index)
                    elif self._abandoned:
                        owned = self._owner_of(next_index)
                        if owned is not None and owned[0] in self._abandoned:
                            kind, payload = "shard-quarantine", owned
                        else:
                            break
                    else:
                        break
                    next_index += 1
                    self._watermark = next_index
                    if kind == "crashed":
                        # A generation-side budget crash is deterministic:
                        # every incarnation would hit it at the same stream
                        # position, so re-leasing cannot help.
                        crashed = True
                        crash_reason = payload
                        done = True
                        break
                    if kind == "pruned":
                        # Replay-time memo hit (see procpool): journaled so a
                        # resumed hunt keeps candidate indices aligned, but
                        # not explored and absent from the verdict map,
                        # matching a serial hunt's stream-time prune.
                        parent_pruned += 1
                        commits_since_checkpoint += 1
                        il_key = "|".join(payload)
                        if journal is not None:
                            journal.commit(
                                index=next_index - 1,
                                verdict="pruned",
                                il_key=il_key,
                            )
                        if metrics.enabled:
                            metrics.inc("interleavings.pruned")
                            metrics.inc("pruned.state_memo")
                        if progress is not None:
                            progress.tick(metrics)
                        if (
                            journal is not None
                            and commits_since_checkpoint >= self.checkpoint_every
                        ):
                            self._checkpoint(next_index)
                            commits_since_checkpoint = 0
                        continue
                    explored += 1
                    commits_since_checkpoint += 1
                    if kind == "quarantine":
                        quarantined.append(payload)
                        il_key = "|".join(payload.interleaving)
                        verdicts[il_key] = "quarantine"
                        if journal is not None:
                            journal.commit(
                                index=next_index - 1,
                                verdict="quarantine",
                                il_key=il_key,
                                error_type=payload.error_type,
                            )
                        if metrics.enabled:
                            metrics.inc("interleavings.quarantined")
                    elif kind == "shard-quarantine":
                        slot, il_ids = payload
                        il_key = "|".join(il_ids)
                        record = QuarantinedReplay(
                            interleaving=il_ids,
                            error_type="ShardAbandoned",
                            message=self._abandon_reasons.get(
                                slot, f"shard slot {slot} abandoned"
                            ),
                            traceback="",
                            fault_plan=self.base.fault_plan_description,
                            shard=slot,
                        )
                        quarantined.append(record)
                        verdicts[il_key] = "quarantine"
                        if journal is not None:
                            journal.commit(
                                index=next_index - 1,
                                verdict="quarantine",
                                il_key=il_key,
                                error_type="ShardAbandoned",
                            )
                        if metrics.enabled:
                            metrics.inc("interleavings.quarantined")
                    elif kind == "ok":
                        il_key = "|".join(payload)
                        verdicts[il_key] = "ok"
                        if journal is not None:
                            journal.commit(
                                index=next_index - 1, verdict="ok", il_key=il_key
                            )
                        if metrics.enabled:
                            metrics.inc("interleavings.replayed")
                    else:  # violation
                        il_ids, outcome = payload
                        if isinstance(outcome, (bytes, bytearray)):
                            # Columnar frames defer outcome deserialisation
                            # to the committed index — here.
                            outcome = pickle.loads(outcome)
                        il_key = "|".join(il_ids)
                        verdicts[il_key] = "violation"
                        violating = outcome
                        violation_messages = list(outcome.violations)
                        if journal is not None:
                            journal.commit(
                                index=next_index - 1,
                                verdict="violation",
                                il_key=il_key,
                                messages=tuple(violation_messages),
                            )
                        if metrics.enabled:
                            metrics.inc("interleavings.replayed")
                        if stop_on_violation:
                            done = True
                    if progress is not None and kind != "crashed":
                        progress.tick(metrics)
                    if (
                        journal is not None
                        and commits_since_checkpoint >= self.checkpoint_every
                    ):
                        self._checkpoint(next_index)
                        commits_since_checkpoint = 0
                    if done:
                        break
                if done:
                    break
                # ---- failure handling -----------------------------------
                for widx in sorted(errors):
                    self._schedule_release(
                        widx, f"worker {widx} raised:\n{errors.pop(widx)}"
                    )
                live = [
                    w for w in range(self.workers) if w not in self._abandoned
                ]
                if all(w in finals for w in live) and not self._respawn_at:
                    if not self._abandoned:
                        break
                    # Only abandoned-shard commits can remain; they drain
                    # through the commit loop until the owner stream ends.
                    if self._owner_of(next_index) is None:
                        break
                    continue
                if not idle:
                    detector.activity()
                else:
                    self._check_leases()
                    self._maybe_steal(finals)
                    widx = self._dead_worker_index(finals, errors)
                    if widx is None:
                        detector.clear()
                    elif detector.suspect(widx):
                        detector.clear()
                        self._schedule_release(
                            widx,
                            f"worker {widx} died without reporting "
                            f"(exit code {self._procs[widx].exitcode})",
                        )
        finally:
            self._shutdown(drain_finals=finals)
            if self._lease_table is not None:
                self._lease_table.release_all()
            if metrics.enabled:
                self._merge_metrics(metrics, finals, explored + parent_pruned)
            self.base._finish_observation(engine, root, explored, mode=self.mode)
            if metrics.enabled:
                self._merge_cache_gauges(metrics, finals)
        self._merge_sanitizer(finals)
        if violating is None and not crashed:
            for flush in finals.values():
                if flush["crash_reason"]:
                    crashed = True
                    crash_reason = flush["crash_reason"]
                    break
        if violating is not None and stop_on_violation:
            crashed = False
            crash_reason = None
        return self._finish(
            verdicts, quarantined, violating, explored, started,
            crashed=crashed, crash_reason=crash_reason, finals=finals,
            parent_pruned=parent_pruned,
        )

    # ------------------------------------------------------------- finish

    def _checkpoint(self, committed: int) -> None:
        tracer = self.base.tracer
        span = tracer.begin("checkpoint") if tracer.enabled else None
        self._checkpoint_seq += 1
        self.journal.checkpoint(self._checkpoint_seq, committed)
        self._metric("coordinator.checkpoints")
        if span is not None:
            tracer.end(span, seq=self._checkpoint_seq, committed=committed)

    def coordination_summary(self) -> Dict[str, Any]:
        return {
            "hunt_id": self.hunt_id,
            "backend": (
                self._lease_table.kind if self._lease_table is not None else None
            ),
            "degraded": self._degraded_reason is not None,
            "degraded_reason": self._degraded_reason,
            "lease_events": list(self._lease_log),
            "releases": sum(
                1 for _, _, status in self._lease_log if status == "re-leased"
            ),
            "abandoned_shards": sorted(self._abandoned),
            "steals": self._steals,
            "checkpoints": self._checkpoint_seq,
            "resumed_commits": len(self._resumed),
            "journal": self.journal.path if self.journal is not None else None,
        }

    def _finish(
        self,
        verdicts: Dict[str, str],
        quarantined: List[QuarantinedReplay],
        violating: Optional[InterleavingOutcome],
        explored: int,
        started: float,
        crashed: bool,
        crash_reason: Optional[str],
        finals: Dict[int, Dict[str, Any]],
        parent_pruned: int = 0,
    ) -> ExplorationResult:
        journal = self.journal
        if journal is not None:
            self._checkpoint(explored + parent_pruned)  # compact the tail
            journal.final(
                found=violating is not None,
                explored=explored,
                crashed=crashed,
                crash_reason=crash_reason,
            )
            journal.close()
        canonical = self._canonical_flush(finals)
        pruning_stats = dict(canonical["pruning_stats"]) if canonical else {}
        if parent_pruned:
            pruning_stats["state_memo"] = (
                pruning_stats.get("state_memo", 0) + parent_pruned
            )
        elapsed = time.perf_counter() - started
        result = ExplorationResult(
            mode=self.mode,
            found=violating is not None,
            explored=explored,
            elapsed_s=elapsed,
            crashed=crashed,
            crash_reason=crash_reason,
            violating=violating,
            pruning_stats=pruning_stats,
            quarantined=quarantined,
            fault_events=canonical["fault_events"] if canonical else 0,
            verdicts=verdicts,
            worker_stats=self._worker_stats(finals),
        )
        result.coordination = self.coordination_summary()
        return result

    # --------------------------------------------------------------- merge

    def _merge_metrics(self, metrics, finals, committed: int) -> None:
        canonical = self._canonical_flush(finals)
        parent_enumerated = (
            len(self._owners) if self._owner_metrics is not None else None
        )
        if canonical is not None and (
            parent_enumerated is None or canonical["yields"] >= parent_enumerated
        ):
            super()._merge_metrics(metrics, finals, committed)
            return
        # The parent's own enumeration (for abandoned-shard commits) went
        # furthest — every live worker died or stopped short — so its
        # stream-side counters are the superset.
        if self._owner_metrics is not None:
            metrics.merge_payload(self._owner_metrics.to_payload())
        for flush in list(finals.values()) + self._stale_finals:
            if flush["replay"] is not None:
                metrics.merge_payload(flush["replay"])
        discarded = (parent_enumerated or 0) - committed
        if discarded > 0:
            metrics.inc("interleavings.discarded", discarded)
