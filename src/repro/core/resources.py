"""Simulated resource budgets for the succeed-or-crash micro-benchmark.

The paper's Figure 10 runs each exploration mode until it either reproduces
the bug or exhausts the machine's resources and crashes.  Our substrate is a
simulator, so "the machine" is a :class:`ResourceMeter`: explorers charge it
for the working state they would keep on a real deployment (the explored-
interleaving ledger of DFS, the composed-interleaving cache of Rand, the
pruner seen-sets of ER-pi), and it raises :class:`ResourceExhausted` when
the budget is gone.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.errors import ResourceExhausted


@dataclass
class ResourceMeter:
    """A byte-denominated budget with per-category accounting."""

    budget_bytes: Optional[int] = None
    used_bytes: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot charge negative bytes")
        if nbytes == 0:
            return  # a zero charge must not plant a dead category entry
        self.used_bytes += nbytes
        self.by_category[category] = self.by_category.get(category, 0) + nbytes
        if self.budget_bytes is not None and self.used_bytes > self.budget_bytes:
            raise ResourceExhausted(
                f"resource budget exhausted: {self.used_bytes} > "
                f"{self.budget_bytes} bytes (while charging {category!r})"
            )

    def release(self, category: str, nbytes: int) -> None:
        """Give back bytes previously charged (e.g. a cache eviction).

        Releases are clamped at zero so a double-release can never mint
        budget out of thin air.  A category released down to zero is
        removed outright — ``by_category`` holds live categories only.
        """
        if nbytes < 0:
            raise ValueError("cannot release negative bytes")
        held = self.by_category.get(category, 0)
        freed = min(nbytes, held)
        remaining = held - freed
        if remaining:
            self.by_category[category] = remaining
        else:
            self.by_category.pop(category, None)
        self.used_bytes = max(self.used_bytes - freed, 0)

    @property
    def remaining_bytes(self) -> Optional[int]:
        if self.budget_bytes is None:
            return None
        return max(self.budget_bytes - self.used_bytes, 0)

    def reset(self) -> None:
        self.used_bytes = 0
        self.by_category.clear()


#: Approximate cost of remembering one interleaving of n events: the paper's
#: checker server persists each explored/queued interleaving as an id list.
def interleaving_footprint(event_count: int) -> int:
    return 24 + 8 * event_count


def state_footprint(value: Any) -> int:
    """A rough, deterministic byte estimate of an observable state.

    Used both by the profiler (state-size distributions) and by the prefix
    snapshot cache (charging retained snapshots to the meter).
    """
    return _footprint(value, None)


def deep_footprint(value: Any) -> int:
    """Like :func:`state_footprint` but also descends into arbitrary object
    attributes (``__dict__``/``__slots__``), so CRDT-bearing snapshots are
    charged for their real contents, not a shallow ``sys.getsizeof``."""
    return _footprint(value, set())


def _footprint(value: Any, seen: Optional[set]) -> int:
    if isinstance(value, dict):
        return 32 + sum(
            _footprint(k, seen) + _footprint(v, seen) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 24 + sum(_footprint(item, seen) for item in value)
    if isinstance(value, str):
        return 40 + len(value)
    if isinstance(value, (int, float, bool)) or value is None:
        return 24
    if seen is not None:
        oid = id(value)
        if oid in seen:
            return 8
        seen.add(oid)
        total = sys.getsizeof(value)
        attrs = getattr(value, "__dict__", None)
        if attrs:
            total += sum(
                _footprint(k, seen) + _footprint(v, seen) for k, v in attrs.items()
            )
        for klass in type(value).__mro__:
            for slot in klass.__dict__.get("__slots__", ()):
                if slot in ("__dict__", "__weakref__"):
                    continue
                if hasattr(value, slot):
                    total += _footprint(getattr(value, slot), seen)
        return total
    return sys.getsizeof(value)
