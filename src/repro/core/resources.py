"""Simulated resource budgets for the succeed-or-crash micro-benchmark.

The paper's Figure 10 runs each exploration mode until it either reproduces
the bug or exhausts the machine's resources and crashes.  Our substrate is a
simulator, so "the machine" is a :class:`ResourceMeter`: explorers charge it
for the working state they would keep on a real deployment (the explored-
interleaving ledger of DFS, the composed-interleaving cache of Rand, the
pruner seen-sets of ER-pi), and it raises :class:`ResourceExhausted` when
the budget is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.errors import ResourceExhausted


@dataclass
class ResourceMeter:
    """A byte-denominated budget with per-category accounting."""

    budget_bytes: Optional[int] = None
    used_bytes: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot charge negative bytes")
        self.used_bytes += nbytes
        self.by_category[category] = self.by_category.get(category, 0) + nbytes
        if self.budget_bytes is not None and self.used_bytes > self.budget_bytes:
            raise ResourceExhausted(
                f"resource budget exhausted: {self.used_bytes} > "
                f"{self.budget_bytes} bytes (while charging {category!r})"
            )

    @property
    def remaining_bytes(self) -> Optional[int]:
        if self.budget_bytes is None:
            return None
        return max(self.budget_bytes - self.used_bytes, 0)

    def reset(self) -> None:
        self.used_bytes = 0
        self.by_category.clear()


#: Approximate cost of remembering one interleaving of n events: the paper's
#: checker server persists each explored/queued interleaving as an id list.
def interleaving_footprint(event_count: int) -> int:
    return 24 + 8 * event_count
