"""Interleaving generation: grouped units and lazy permutation streams.

The raw search space for ``n`` events is ``n!`` (paper section 2.3).  ER-pi
first applies *event grouping* (Algorithm 1) to fuse each sync-request with
its matching sync-execution — and any developer-specified pairs — into atomic
units, then permutes units rather than events.  Because real workloads can
still have astronomically many permutations, generation is lazy: both
enumeration orders are constant-memory iterators.

Two enumeration orders are provided:

* :func:`lexicographic_permutations` — the order a DFS over the interleaving
  tree produces (the paper's DFS baseline): the tail varies first, so
  reaching an interleaving that moves an *early* event takes factorially
  many steps.
* :func:`sjt_permutations` — Steinhaus-Johnson-Trotter minimal-change order,
  ER-pi's neighbourhood-first strategy: each successive interleaving differs
  by one adjacent transposition, so small perturbations of the recorded
  order (where integration bugs overwhelmingly live) are visited early.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ErPiError, ResourceExhausted
from repro.core.events import Event, EventKind

#: A unit is an atomic run of events that always replay consecutively.
Unit = Tuple[Event, ...]
#: An interleaving is a flat event sequence.
Interleaving = Tuple[Event, ...]


@dataclass(frozen=True)
class GroupingResult:
    """Output of Algorithm 1: the units plus bookkeeping for reporting."""

    units: Tuple[Unit, ...]
    grouped_pairs: Tuple[Tuple[str, str], ...]  # (first_id, second_id) per fusion

    @property
    def event_count(self) -> int:
        return sum(len(unit) for unit in self.units)

    @property
    def unit_count(self) -> int:
        return len(self.units)

    @property
    def raw_space(self) -> int:
        """n! over raw events."""
        return math.factorial(self.event_count)

    @property
    def grouped_space(self) -> int:
        """u! over grouped units."""
        return math.factorial(self.unit_count)

    @property
    def reduction_factor(self) -> float:
        """How many times grouping shrank the space (paper: 8!/6! = 56x)."""
        if self.grouped_space == 0:
            return 1.0
        return self.raw_space / self.grouped_space


def group_events(
    events: Sequence[Event],
    spec_groups: Optional[Sequence[Tuple[str, str]]] = None,
) -> GroupingResult:
    """Algorithm 1 (Event Group Pruning).

    Fuses each ``SYNC_REQ`` with the matching ``EXEC_SYNC`` on the same
    (sender, receiver) channel — pairing them in program order per channel —
    plus any developer-specified ``(event_id, event_id)`` groups.  Returns
    units in the original recorded order.
    """
    by_id: Dict[str, Event] = {}
    for event in events:
        if event.event_id in by_id:
            raise ErPiError(f"duplicate event id {event.event_id!r}")
        by_id[event.event_id] = event

    partner: Dict[str, str] = {}  # first event id -> second event id

    # Pair sync requests with sync executions per channel, in order.
    pending_reqs: Dict[Tuple[str, str], List[str]] = {}
    for event in events:
        if event.kind == EventKind.SYNC_REQ:
            pending_reqs.setdefault(event.channel, []).append(event.event_id)
        elif event.kind == EventKind.EXEC_SYNC:
            queue = pending_reqs.get(event.channel, [])
            if queue:
                req_id = queue.pop(0)
                partner[req_id] = event.event_id

    # Developer-specified groups (paper: "if explicitly directed by the user").
    for first_id, second_id in spec_groups or ():
        if first_id not in by_id or second_id not in by_id:
            raise ErPiError(f"unknown event in spec group ({first_id!r}, {second_id!r})")
        if first_id in partner or second_id in set(partner.values()):
            raise ErPiError(f"event in spec group ({first_id!r}, {second_id!r}) already grouped")
        partner[first_id] = second_id

    grouped_pairs = tuple(sorted(partner.items()))
    absorbed = set(partner.values())

    units: List[Unit] = []
    for event in events:
        if event.event_id in absorbed:
            continue
        chain: List[Event] = [event]
        # Follow the partner chain (a unit may absorb several events if the
        # developer chains groups, e.g. a->b and b->c).
        current = event.event_id
        while current in partner:
            current = partner[current]
            chain.append(by_id[current])
        units.append(tuple(chain))
    return GroupingResult(units=tuple(units), grouped_pairs=grouped_pairs)


def flatten(units: Sequence[Unit]) -> Interleaving:
    """Expand a unit permutation into the flat event interleaving."""
    out: List[Event] = []
    for unit in units:
        out.extend(unit)
    return tuple(out)


def lexicographic_permutations(units: Sequence[Unit]) -> Iterator[Tuple[Unit, ...]]:
    """All unit permutations in DFS (lexicographic-by-position) order.

    This is exactly the order a depth-first interleaving tree produces when
    children are visited in recorded order: the identity first, then
    permutations that differ only in the tail.
    """
    items = list(units)
    n = len(items)
    if n == 0:
        yield ()
        return
    indices = list(range(n))
    cycles = list(range(n, 0, -1))
    yield tuple(items[i] for i in indices)
    while True:
        for i in reversed(range(n)):
            cycles[i] -= 1
            if cycles[i] == 0:
                indices[i:] = indices[i + 1 :] + indices[i : i + 1]
                cycles[i] = n - i
            else:
                j = n - cycles[i]
                indices[i], indices[j] = indices[j], indices[i]
                yield tuple(items[k] for k in indices)
                break
        else:
            return


def sjt_permutations(units: Sequence[Unit]) -> Iterator[Tuple[Unit, ...]]:
    """All unit permutations in Steinhaus-Johnson-Trotter order.

    Minimal-change: each permutation differs from its predecessor by one
    adjacent transposition, starting from the recorded order.  Early output
    therefore stays in the neighbourhood of the recorded interleaving, which
    is where ER-pi expects integration bugs to surface first.
    """
    items = list(units)
    n = len(items)
    if n == 0:
        yield ()
        return
    # Work over positions 0..n-1; direction -1 = left, +1 = right.
    perm = list(range(n))
    direction = [-1] * n
    yield tuple(items[i] for i in perm)
    while True:
        # Find the largest mobile element (mobile: points at a smaller one).
        mobile_index = -1
        mobile_value = -1
        for index, value in enumerate(perm):
            target = index + direction[value]
            if 0 <= target < n and perm[target] < value and value > mobile_value:
                mobile_value = value
                mobile_index = index
        if mobile_index < 0:
            return
        target = mobile_index + direction[mobile_value]
        perm[mobile_index], perm[target] = perm[target], perm[mobile_index]
        for value in range(mobile_value + 1, n):
            direction[value] = -direction[value]
        yield tuple(items[i] for i in perm)


def lehmer_rank(perm: Sequence[int]) -> int:
    """The Lehmer-code rank of a permutation of ``0..n-1`` (0-based).

    A bijection onto ``0..n!-1``: remembering a permutation costs one int
    instead of an n-tuple, which is what keeps the ``seen`` bookkeeping of
    :func:`relocation_permutations` compact.
    """
    n = len(perm)
    rank = 0
    for index in range(n):
        smaller_later = 0
        for later in range(index + 1, n):
            if perm[later] < perm[index]:
                smaller_later += 1
        rank = rank * (n - index) + smaller_later
    return rank


#: Retained bytes charged per Lehmer rank in the relocation seen-set (the
#: set slot plus the rank's int object; ranks are bignums past 20 units).
SEEN_RANK_COST = 64
SEEN_CATEGORY = "relocation_seen"


def relocation_permutations(
    units: Sequence[Unit],
    meter: Optional[object] = None,
    on_degrade: Optional[Callable[[str], None]] = None,
) -> Iterator[Tuple[Unit, ...]]:
    """Neighbourhood-first enumeration: ER-pi's production order.

    Yields, without repetition:

    1. the recorded order;
    2. every single-unit relocation (one unit moved to another position) —
       the shapes 1-reordering integration bugs take;
    3. every composition of two single-unit relocations;
    4. the remaining permutations in SJT minimal-change order.

    The stream is complete: over a full run it yields each permutation of the
    units exactly once (verified by the exhaustiveness tests), but orders the
    near-recorded neighbourhood first, which is where replay finds
    integration bugs in practice.

    Deduplication stores one Lehmer-code rank (an int) per permutation seen
    in the relocation phases — O(n^4) ints at most — and nothing during the
    SJT tail, whose membership checks only consult the relocation-phase set.
    O(n^4) is "at most" in permutations but unbounded in bytes as the unit
    count grows (the ranks are bignums), so when a ``meter`` is supplied
    every new rank is charged to it *before* it is remembered.  If the
    budget runs out the curated phases are abandoned — the stream degrades,
    loudly via ``on_degrade`` (called once with the reason), to exact SJT
    minimal-change order over everything not already yielded.  The retained
    (fully charged) seen-set keeps the degraded stream duplicate-free and
    complete: every yielded permutation was recorded before yielding, and
    the SJT tail skips exactly that set.
    """
    items = list(units)
    n = len(items)
    if n == 0:
        yield ()
        return
    seen: set = set()
    exhausted = False

    def emit(perm: List[int]) -> Optional[Tuple[Unit, ...]]:
        nonlocal exhausted
        rank = lehmer_rank(perm)
        if rank in seen:
            return None
        if meter is not None:
            try:
                meter.charge(SEEN_CATEGORY, SEEN_RANK_COST)
            except ResourceExhausted as exc:
                # The failed charge was recorded before raising; give it
                # back so the meter reflects only ranks actually retained.
                meter.release(SEEN_CATEGORY, SEEN_RANK_COST)
                exhausted = True
                if on_degrade is not None:
                    on_degrade(str(exc))
                return None
        seen.add(rank)
        return tuple(items[i] for i in perm)

    def relocate(perm: List[int], src: int, dst: int) -> List[int]:
        out = list(perm)
        unit = out.pop(src)
        out.insert(dst, unit)
        return out

    base = list(range(n))
    first = emit(base)
    if first is not None:
        yield first
    # Distance 1: all single relocations.
    singles: List[List[int]] = []
    for src in range(n):
        if exhausted:
            break
        for dst in range(n):
            if src == dst:
                continue
            moved = relocate(base, src, dst)
            singles.append(moved)
            result = emit(moved)
            if result is not None:
                yield result
            elif exhausted:
                break
    # Distance 2: compositions of two relocations.
    for moved in singles:
        if exhausted:
            break
        for src in range(n):
            if exhausted:
                break
            for dst in range(n):
                if src == dst:
                    continue
                result = emit(relocate(moved, src, dst))
                if result is not None:
                    yield result
                elif exhausted:
                    break
    # Everything else: SJT over the remaining permutations.  SJT visits each
    # permutation exactly once, so only the relocation-phase set needs
    # consulting — nothing new is remembered here.
    index_of = {id(unit): index for index, unit in enumerate(items)}
    for perm_units in sjt_permutations(items):
        perm_key = [index_of[id(unit)] for unit in perm_units]
        if lehmer_rank(perm_key) in seen:
            continue
        yield perm_units


def permutation_count(unit_count: int) -> int:
    return math.factorial(unit_count)


def unit_permutation_stream(
    units: Sequence[Unit],
    order: str = "sjt",
    meter: Optional[object] = None,
    on_degrade: Optional[Callable[[str], None]] = None,
) -> Iterator[Tuple[Unit, ...]]:
    """Unit permutations (pre-flatten) in the requested order.

    The sharded enumeration fast path consumes this stream directly: a
    worker can derive a candidate's shard key by walking the leading units
    and flatten only the permutations its shard owns, instead of
    materialising the full flat interleaving for every stream position.

    ``meter`` / ``on_degrade`` pass through to
    :func:`relocation_permutations` (the only order with retained
    deduplication state worth charging)."""
    if order == "sjt":
        return sjt_permutations(units)
    if order == "lexicographic":
        return lexicographic_permutations(units)
    if order == "relocation":
        return relocation_permutations(units, meter=meter, on_degrade=on_degrade)
    raise ErPiError(f"unknown enumeration order {order!r}")


def interleaving_stream(
    units: Sequence[Unit],
    order: str = "sjt",
    limit: Optional[int] = None,
    meter: Optional[object] = None,
    on_degrade: Optional[Callable[[str], None]] = None,
) -> Iterator[Interleaving]:
    """Flat event interleavings in the requested order, optionally capped.

    A flatten wrapper over :func:`unit_permutation_stream`, so both paths
    enumerate byte-identical permutation sequences by construction."""
    stream = unit_permutation_stream(
        units, order=order, meter=meter, on_degrade=on_degrade
    )
    for index, unit_perm in enumerate(stream):
        if limit is not None and index >= limit:
            return
        yield flatten(unit_perm)
