"""The hunt journal: a durable, append-only checkpoint of one hunt.

A coordinated hunt (:mod:`repro.core.coordinator`) survives its own
infrastructure failing — a SIGKILLed worker, a killed parent — because every
committed verdict is journaled *before* the hunt moves past it.  The journal
is JSONL, one record per line:

* ``header``  — the hunt's identity and configuration (scenario, mode, seed,
  cap, workers, fault/cache flags).  Always the first line; ``--resume``
  rebuilds the whole hunt stack from it.
* ``commit``  — one committed verdict, in global candidate order: index,
  verdict (``ok`` / ``violation`` / ``quarantine``), the interleaving key,
  and for violations the assertion messages (so a resumed hunt can report
  the violation without re-replaying it).
* ``lease``   — shard-lease lifecycle: acquired / renewed-failed / expired /
  re-leased / released / quarantined, with the slot and attempt number.
* ``degraded`` — the coordinator fell down its degradation ladder (e.g. the
  lock farm lost quorum and leases moved to the in-process table).
* ``checkpoint`` — a durability barrier: all records up to it have been
  rewritten to disk via atomic rename, so a torn tail can lose at most the
  lines after the last checkpoint's rename (each append is still
  flushed+fsynced, so in practice at most the final partial line).
* ``final``   — the hunt completed; holds the summary.  A journal without a
  ``final`` record is resumable; with one it is just replayable.

Crash tolerance on load: a truncated *trailing* line (the writer died
mid-append) is dropped silently; corruption anywhere else raises
:class:`JournalError` — a resumed hunt must never silently skip committed
work, because the resumed verdict map is promised to be bit-for-bit the
uninterrupted run's.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Dict, List, Optional, Tuple


class JournalError(Exception):
    """The journal file is unusable (corrupt, wrong version, bad prefix)."""


#: Journal format version (bumped on incompatible record changes).
VERSION = 1


class JournaledOutcome:
    """A violation reconstructed from the journal instead of a live replay.

    Quacks like :class:`~repro.core.replay.InterleavingOutcome` for the
    report/CLI surface (``violated`` / ``violations`` / event ids), without
    the replica states a live outcome carries — those died with the previous
    incarnation of the hunt.
    """

    __slots__ = ("violated", "violations", "event_ids")

    def __init__(self, event_ids: Tuple[str, ...], violations: List[str]) -> None:
        self.violated = True
        self.violations = list(violations)
        self.event_ids = tuple(event_ids)

    #: The live outcome exposes ``interleaving`` as Event objects; a resumed
    #: one only knows the ids.  Kept as a property for parity of access.
    @property
    def interleaving(self) -> Tuple[str, ...]:
        return self.event_ids


class HuntJournal:
    """Append-only JSONL checkpoint of a coordinated hunt.

    Appends are flushed and fsynced per record; :meth:`checkpoint`
    additionally rewrites the whole file through a temp file + atomic
    ``os.replace``, which both compacts away any torn tail and guarantees
    readers never observe a half-written file at a checkpoint boundary.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.records: List[Dict[str, Any]] = []
        self._handle: Optional[io.TextIOBase] = None

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, path: str, header: Dict[str, Any]) -> "HuntJournal":
        """Start a fresh journal (atomically replacing any previous file)."""
        journal = cls(path)
        journal.records = [{"type": "header", "version": VERSION, **header}]
        journal._rewrite()
        journal._open_append()
        return journal

    @classmethod
    def load(cls, path: str) -> "HuntJournal":
        """Read an existing journal, tolerating a truncated trailing line."""
        journal = cls(path)
        try:
            with open(path, "r") as handle:
                lines = handle.read().split("\n")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path!r}: {exc}") from exc
        records: List[Dict[str, Any]] = []
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                remainder = [l for l in lines[lineno + 1 :] if l.strip()]
                if remainder:
                    raise JournalError(
                        f"{path}: corrupt record at line {lineno + 1} "
                        "(not the trailing line — refusing to resume)"
                    ) from None
                break  # torn tail: the writer died mid-append; drop it
        if not records or records[0].get("type") != "header":
            raise JournalError(f"{path}: missing header record")
        if records[0].get("version") != VERSION:
            raise JournalError(
                f"{path}: journal version {records[0].get('version')!r}, "
                f"this build reads version {VERSION}"
            )
        journal.records = records
        return journal

    def reopen(self) -> None:
        """Prepare a loaded journal for further appends.

        The compacting rewrite drops any torn tail from disk before new
        records land after it.
        """
        if self._handle is not None:
            return
        self._rewrite()
        self._open_append()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "HuntJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # --------------------------------------------------------------- writes

    def append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise JournalError("journal is not open for appends (call reopen())")
        self.records.append(record)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def commit(
        self,
        index: int,
        verdict: str,
        il_key: str,
        error_type: Optional[str] = None,
        messages: Tuple[str, ...] = (),
    ) -> None:
        record: Dict[str, Any] = {
            "type": "commit",
            "index": index,
            "verdict": verdict,
            "il": il_key,
        }
        if error_type is not None:
            record["error"] = error_type
        if messages:
            record["messages"] = list(messages)
        self.append(record)

    def lease(self, slot: int, attempt: int, status: str) -> None:
        self.append(
            {"type": "lease", "slot": slot, "attempt": attempt, "status": status}
        )

    def degraded(self, component: str, reason: str) -> None:
        self.append({"type": "degraded", "component": component, "reason": reason})

    def checkpoint(self, seq: int, committed: int) -> None:
        """A durability barrier: record + full atomic-rename rewrite."""
        self.append({"type": "checkpoint", "seq": seq, "committed": committed})
        self._rewrite()
        self._open_append()

    def final(
        self,
        found: bool,
        explored: int,
        crashed: bool = False,
        crash_reason: Optional[str] = None,
    ) -> None:
        self.append(
            {
                "type": "final",
                "found": found,
                "explored": explored,
                "crashed": crashed,
                "crash_reason": crash_reason,
            }
        )

    def _rewrite(self) -> None:
        """Write every record to ``path`` through a temp file + os.replace."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    def _open_append(self) -> None:
        self._handle = open(self.path, "a")

    # ---------------------------------------------------------------- reads

    @property
    def header(self) -> Dict[str, Any]:
        return self.records[0]

    def _of_type(self, kind: str) -> List[Dict[str, Any]]:
        return [record for record in self.records if record.get("type") == kind]

    @property
    def commits(self) -> List[Dict[str, Any]]:
        """Committed verdicts, validated as a contiguous index prefix.

        Commits are appended strictly in commit order, so any gap or
        reordering means the file was tampered with or mis-merged — resume
        refuses rather than skipping committed work.
        """
        commits = self._of_type("commit")
        for position, record in enumerate(commits):
            if record.get("index") != position:
                raise JournalError(
                    f"{self.path}: commit records are not a contiguous prefix "
                    f"(record {position} has index {record.get('index')!r})"
                )
        return commits

    @property
    def lease_events(self) -> List[Tuple[int, int, str]]:
        return [
            (record["slot"], record["attempt"], record["status"])
            for record in self._of_type("lease")
        ]

    @property
    def degraded_events(self) -> List[Tuple[str, str]]:
        return [
            (record["component"], record["reason"])
            for record in self._of_type("degraded")
        ]

    @property
    def checkpoints(self) -> int:
        return len(self._of_type("checkpoint"))

    @property
    def final_record(self) -> Optional[Dict[str, Any]]:
        finals = self._of_type("final")
        return finals[-1] if finals else None

    @property
    def is_final(self) -> bool:
        return self.final_record is not None
