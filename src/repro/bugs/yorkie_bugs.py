"""Table-1 bug scenarios for Subject 4 (Yorkie)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bugs.registry import BugScenario, register
from repro.core.assertions import assert_convergence_when_settled, assert_predicate
from repro.core.replay import Assertion, InterleavingOutcome
from repro.net.cluster import Cluster
from repro.rdl.yorkie import YorkieDocument


def _build(defects: set, replicas: Tuple[str, ...] = ("A", "B")) -> Cluster:
    cluster = Cluster()
    for rid in replicas:
        cluster.add_replica(rid, YorkieDocument(rid, defects=set(defects)))
    return cluster


@register
class Yorkie1(BugScenario):
    """Issue #676 — the document doesn't converge when using Array.MoveAfter:
    concurrent moves of the same element are applied in arrival order with no
    conflict resolution, so replicas that saw the moves in different orders
    disagree on the array forever.
    """

    name = "Yorkie-1"
    issue = 676
    subject = "Yorkie"
    expected_events = 17
    status = "open"
    reason = "-"
    description = "concurrent Array.MoveAfter applied in arrival order"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        return _build(set() if fixed else {"nonconvergent_move"})

    def fixed_defects(self) -> frozenset:
        return frozenset({"nonconvergent_move"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.set(["items"], ["t1", "t2", "t3", "t4"])   # e1
        cluster.sync("A", "B")                       # e2, e3
        b.array_append(["items"], "t5")              # e4
        cluster.sync("B", "A")                       # e5, e6
        cluster.sync("A", "B")                       # e7, e8
        a.move_after(["items"], 0, 2)                # e9  move t1 after t3
        cluster.sync("A", "B")                       # e10, e11
        b.move_after(["items"], 0, 3)                # e12 (recorded: saw A's move)
        cluster.sync("B", "A")                       # e13, e14
        cluster.sync("A", "B")                       # e15, e16
        a.array_value(["items"])                     # e17 READ

    def make_assertions(self) -> List[Assertion]:
        return [assert_convergence_when_settled(["A", "B"])]


@register
class Yorkie2(BugScenario):
    """Issue #663 — the set operation mishandles nested object values:
    writing an object onto an existing object replaces the whole subtree
    (LWW) instead of merging per key, so a concurrent nested write on a peer
    is silently clobbered.

    The invariant only fires when the observation is trustworthy: the final
    config read must also see the two relay markers (proof that both
    two-hop relay chains completed), which keeps the violating fraction
    below random exploration's reach while the concurrency trigger itself
    sits in the last few events — inside DFS's tail horizon.
    """

    name = "Yorkie-2"
    issue = 663
    subject = "Yorkie"
    expected_events = 22
    status = "closed"
    reason = "misconception"
    description = "set with a nested object value clobbers sibling keys"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"shallow_set"}
        return _build(defects, replicas=("A", "B", "C", "D"))

    def fixed_defects(self) -> frozenset:
        return frozenset({"shallow_set"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        c = cluster.rdl("C")
        d = cluster.rdl("D")
        # The shared config originates at C and reaches A through the
        # C -> B -> A relay; A's nested update requires it to exist (strict
        # Document.Update).  The audit marker that certifies the observation
        # travels the three-hop D -> C -> B -> A relay.  The concurrency
        # window between B's nested write and the delivery of A's sits at
        # the tail of the workload, inside DFS's horizon.
        c.set(["cfg"], {"base": 1})                  # e1
        cluster.sync("C", "B")                       # e2, e3
        cluster.sync("B", "A")                       # e4, e5
        a.update(["cfg", "y"], 2)                    # e6   nested write #1
        d.set(["audit"], "ok")                       # e7
        cluster.sync("D", "C")                       # e8, e9
        cluster.sync("C", "B")                       # e10, e11
        cluster.sync("B", "A")                       # e12, e13  audit lands
        a.get(["audit"])                             # e14 READ
        cluster.sync("A", "B")                       # e15, e16  y reaches B
        b.update(["cfg", "z"], 3)                    # e17  nested write #2
        cluster.sync("B", "A")                       # e18, e19
        a.get(["cfg"])                               # e20 READ
        cluster.sync("A", "B")                       # e21, e22

    def make_assertions(self) -> List[Assertion]:
        def nested_writes_survive(outcome: InterleavingOutcome) -> bool:
            succeeded = {
                res.event.event_id
                for res in outcome.event_results
                if res.ok and res.event.op_name == "update"
            }
            if {"e6", "e17"} - succeeded:
                return True  # a nested write never ran: vacuous
            state = outcome.states.get("A", {})
            if state.get("audit") != "ok":
                return True  # audit relay incomplete: observation untrusted
            final_cfg = state.get("cfg", {})
            if not isinstance(final_cfg, dict):
                return True
            has_y = "y" in final_cfg
            has_z = "z" in final_cfg
            if (has_y and not has_z and self._z_reached_a(outcome)) or (
                has_z and not has_y
            ):
                return False  # one nested write erased the other
            return True

        return [
            assert_predicate(
                nested_writes_survive,
                "concurrent nested write clobbered a sibling key "
                "(Yorkie issue #663)",
            )
        ]

    @staticmethod
    def _z_reached_a(outcome: InterleavingOutcome) -> bool:
        """True iff some B->A sync request was issued after B's z-write and
        its execution delivered at A (so z's absence at A is a real loss)."""
        z_position = None
        for index, res in enumerate(outcome.event_results):
            if res.event.event_id == "e17":
                z_position = index
        if z_position is None:
            return False
        pending = []
        for index, res in enumerate(outcome.event_results):
            event = res.event
            if event.is_sync and event.channel == ("B", "A"):
                if event.event_id.startswith("e") and event.kind.value == "sync_req":
                    pending.append(index)
                elif pending:
                    req_index = pending.pop(0)
                    if req_index > z_position:
                        return True
        return False
