"""Table-1 bug scenarios for Subject 1 (Roshi).

Event ids in spec_groups/constraints refer to the deterministic ``e1..eN``
numbering the recorder assigns to the workload calls, in order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bugs.registry import BugScenario, register
from repro.core.assertions import (
    FirstValueStability,
    assert_convergence_when_settled,
    assert_predicate,
)
from repro.core.replay import Assertion, InterleavingOutcome
from repro.net.cluster import Cluster
from repro.rdl.roshi import RoshiReplica

KEY = "events"


def _build(defects: set, replicas: Tuple[str, ...] = ("A", "B")) -> Cluster:
    cluster = Cluster()
    for rid in replicas:
        cluster.add_replica(rid, RoshiReplica(rid, defects=set(defects)))
    return cluster


@register
class Roshi1(BugScenario):
    """Issue #18 — incorrect ``deleted`` field in the delete response.

    The buggy library reports ``deleted`` from whether the request *wrote*
    anything rather than from the post-conflict-resolution outcome.  The
    workload deletes at timestamp 20 — legitimate at record time, but in
    interleavings where the delete lands after B's re-add at timestamp 30
    synced in, the delete loses LWW yet the response still claims success.
    The app pairs each delete with an immediate score check (grouped), so the
    invariant compares the response flag against the actual state.
    """

    name = "Roshi-1"
    issue = 18
    subject = "Roshi"
    expected_events = 9
    status = "closed"
    reason = "misconception"
    description = "delete response's 'deleted' field contradicts the CRDT outcome"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        return _build(set() if fixed else {"wrong_deleted_field"})

    def fixed_defects(self) -> frozenset:
        return frozenset({"wrong_deleted_field"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.insert(KEY, "x", 10.0)       # e1
        cluster.sync("A", "B")         # e2, e3
        b.insert(KEY, "x", 30.0)       # e4
        a.delete(KEY, "x", 20.0)       # e5  (grouped with e6)
        a.score(KEY, "x")              # e6  READ: actual presence right now
        cluster.sync("B", "A")         # e7, e8
        a.select(KEY)                  # e9  READ

    def spec_groups(self) -> List[Tuple[str, str]]:
        return [("e5", "e6")]

    def make_assertions(self) -> List[Assertion]:
        def flag_matches_state(outcome: InterleavingOutcome) -> bool:
            flag: Optional[bool] = None
            score = "unset"
            for res in outcome.event_results:
                if res.event.op_name == "delete" and res.ok:
                    flag = res.result
                if res.event.event_id == "e6" and res.ok:
                    score = res.result
            if flag is None or score == "unset":
                return True  # delete or probe did not run: vacuous
            return flag == (score is None)

        return [
            assert_predicate(
                flag_matches_state,
                "delete response claimed deletion but the member survived LWW "
                "(Roshi issue #18)",
            )
        ]


@register
class Roshi2(BugScenario):
    """Issue #11 — CRDT semantics violated when add and delete carry the
    same timestamp: without a fixed bias the winner is arrival order, so
    replicas that observed different orders diverge forever.
    """

    name = "Roshi-2"
    issue = 11
    subject = "Roshi"
    expected_events = 10
    status = "closed"
    reason = "RDL issue"
    description = "equal-timestamp add/delete resolved by arrival order"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        return _build(set() if fixed else {"no_tie_break"})

    def fixed_defects(self) -> frozenset:
        return frozenset({"no_tie_break"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.insert(KEY, "x", 5.0)        # e1
        cluster.sync("A", "B")         # e2, e3
        b.delete(KEY, "x", 5.0)        # e4  same timestamp!
        cluster.sync("B", "A")         # e5, e6
        a.insert(KEY, "y", 7.0)        # e7
        cluster.sync("A", "B")         # e8, e9
        b.select(KEY)                  # e10 READ

    def make_assertions(self) -> List[Assertion]:
        return [assert_convergence_when_settled(["A", "B"])]


@register
class Roshi3(BugScenario):
    """Issue #40 — select responses follow Go-map (arrival) order instead of
    descending timestamp.

    The workload's recorded run delivers members to A in exactly descending
    timestamp order, so arrival order coincides with the documented order and
    nothing looks wrong.  The invariant only fires on a *complete* read (all
    six members visible at A — which requires the whole sync relay, including
    the two-hop B->C->A path for m6, to have completed), so random exploration
    almost never reaches a violating interleaving, and reordering the early
    delivery events is beyond DFS's tail-first horizon.
    """

    name = "Roshi-3"
    issue = 40
    subject = "Roshi"
    expected_events = 21
    status = "closed"
    reason = "misconception"
    description = "select order is arrival order, not timestamp order"

    replica_scope = "A"

    MEMBERS = ("m1", "m2", "m3", "m4", "m5", "m6")

    def independence_constraints(self):
        # Discovered while replaying: the initial B and C inserts (e2, e3)
        # touch different members on different replicas; with no sync between
        # them their order is immaterial (Algorithm 3, developer-supplied).
        return [("e2", "e3")]

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"unordered_select"}
        return _build(defects, replicas=("A", "B", "C", "D", "E"))

    def fixed_defects(self) -> frozenset:
        return frozenset({"unordered_select"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        c = cluster.rdl("C")
        e = cluster.rdl("E")
        # A's only inbound channel is C -> A; payloads deliver newest-first,
        # so the recorded arrival order at A matches the documented select
        # order.  The last member (m6) lives on the edge node E, whose only
        # path to A is the three-hop E -> D -> C -> A relay — the
        # completeness gate that keeps random exploration out.
        a.insert(KEY, "m1", 60.0)      # e1
        b.insert(KEY, "m2", 50.0)      # e2
        c.insert(KEY, "m3", 40.0)      # e3
        cluster.sync("B", "C")         # e4, e5    m2 joins C
        cluster.sync("C", "A")         # e6, e7    m2, m3 arrive (desc)
        b.insert(KEY, "m4", 30.0)      # e8
        cluster.sync("B", "C")         # e9, e10   m4 joins C
        c.insert(KEY, "m5", 20.0)      # e11
        e.insert(KEY, "m6", 10.0)      # e12
        cluster.sync("E", "D")         # e13, e14  relay hop 1
        cluster.sync("D", "C")         # e15, e16  relay hop 2: m6 joins C
        cluster.sync("C", "A")         # e17, e18  m4, m5, m6 arrive (desc)
        cluster.sync("A", "B")         # e19, e20  outbound (no effect on A)
        a.select(KEY, 0, 10)           # e21 READ

    def make_assertions(self) -> List[Assertion]:
        expected = list(self.MEMBERS)

        def complete_reads_are_ordered(outcome: InterleavingOutcome) -> bool:
            reads = outcome.reads()
            result = reads.get("e21")
            if result is None or set(result) != set(expected):
                return True  # incomplete visibility: vacuous
            return list(result) == expected

        return [
            assert_predicate(
                complete_reads_are_ordered,
                "select returned all members but not in descending timestamp "
                "order (Roshi issue #40)",
            )
        ]
