"""Table-1 bug scenarios for Subject 3 (ReplicaDB)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bugs.registry import BugScenario, register
from repro.core.assertions import assert_no_failed_op_matching, assert_predicate
from repro.core.replay import Assertion, InterleavingOutcome
from repro.net.cluster import Cluster
from repro.rdl.replicadb import ReplicaDBJob


@register
class ReplicaDB1(BugScenario):
    """Issue #79 — out-of-memory error: the JDBC fetch size silently falls
    back to "stream everything", so a transfer that runs after the upstream
    source has grown past the job's memory budget crashes.
    """

    name = "ReplicaDB-1"
    issue = 79
    subject = "ReplicaDB"
    expected_events = 10
    status = "closed"
    reason = "misuse"
    description = "unbounded fetch loads the whole result set into memory"

    BUDGET_ROWS = 4

    def build_cluster(self, fixed: bool = False) -> Cluster:
        cluster = Cluster()
        cluster.add_replica(
            "A",
            ReplicaDBJob(
                "A",
                defects=set() if fixed else {"unbounded_fetch"},
                fetch_size=2,
                memory_budget_rows=self.BUDGET_ROWS,
            ),
        )
        cluster.add_replica(
            "B",
            ReplicaDBJob(
                "B", fetch_size=2, memory_budget_rows=self.BUDGET_ROWS
            ),
        )
        return cluster

    def fixed_defects(self) -> frozenset:
        return frozenset({"unbounded_fetch"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.source_insert(1, {"v": "a"})     # e1
        a.source_insert(2, {"v": "b"})     # e2
        a.source_insert(3, {"v": "c"})     # e3
        a.replicate("complete")            # e4   3 rows: within budget
        a.replicate("incremental")         # e5   still 3 rows
        b.source_insert(4, {"v": "d"})     # e6
        b.source_insert(5, {"v": "e"})     # e7
        cluster.sync("B", "A")             # e8, e9   source grows to 5 rows
        a.sink_matches_source()            # e10 READ

    def failed_ops_constraints(self):
        # Once the grown source has synced in (e9), every unbounded transfer
        # blows the memory budget; the doomed transfers' relative order is
        # immaterial (Algorithm 4).
        return [(("e9",), ("e4", "e5"))]

    def make_assertions(self) -> List[Assertion]:
        return [assert_no_failed_op_matching("OutOfMemoryError")]


@register
class ReplicaDB2(BugScenario):
    """Issue #23 — deleted records aren't deleted from the sink: incremental
    mode only upserts, so a transfer that ran before the delete synced in
    leaves the ghost row in the sink forever.

    This is the paper's one case where Rand beats DFS: the trigger is a
    single transposition whose lexicographically-first occurrence sits just
    past DFS's first backtracking block, while a random shuffle hits the
    (common) violating pattern almost immediately.
    """

    name = "ReplicaDB-2"
    issue = 23
    subject = "ReplicaDB"
    expected_events = 14
    status = "closed"
    reason = "misconception"
    description = "incremental replication never deletes sink rows"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        cluster = Cluster()
        defects = set() if fixed else {"no_sink_deletes"}
        for rid in ("A", "B"):
            cluster.add_replica(
                rid, ReplicaDBJob(rid, defects=set(defects), fetch_size=4)
            )
        return cluster

    def fixed_defects(self) -> frozenset:
        return frozenset({"no_sink_deletes"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.source_insert(1, {"v": "a"})     # e1
        a.source_insert(2, {"v": "b"})     # e2
        cluster.sync("A", "B")             # e3, e4
        b.source_delete(1)                 # e5
        cluster.sync("B", "A")             # e6, e7
        a.replicate("incremental")         # e8   recorded: after the delete arrived
        a.source_insert(3, {"v": "c"})     # e9
        a.replicate("incremental")         # e10
        cluster.sync("A", "B")             # e11, e12
        b.replicate("incremental")         # e13
        a.sink_matches_source()            # e14 READ

    def make_assertions(self) -> List[Assertion]:
        def sink_consistent(outcome: InterleavingOutcome) -> bool:
            reads = outcome.reads()
            verdict: Optional[bool] = reads.get("e14")
            if verdict is None:
                return True  # the consistency probe did not run: vacuous
            # The probe may legitimately report False when it ran before the
            # last transfer; only a False *after* every replicate counts.
            positions = {
                res.event.event_id: index
                for index, res in enumerate(outcome.event_results)
            }
            last_transfer = max(
                (
                    index
                    for index, res in enumerate(outcome.event_results)
                    if res.event.replica_id == "A"
                    and res.event.op_name == "replicate"
                ),
                default=-1,
            )
            last_source_change = max(
                (
                    index
                    for index, res in enumerate(outcome.event_results)
                    if res.event.replica_id == "A"
                    and (
                        res.event.is_sync
                        or res.event.op_name.startswith("source_")
                    )
                ),
                default=-1,
            )
            probe = positions.get("e14", -1)
            if probe < last_transfer or last_transfer < last_source_change:
                return True  # stale probe or un-replicated source change
            return bool(verdict)

        return [
            assert_predicate(
                sink_consistent,
                "sink retains rows deleted at the source after an incremental "
                "transfer (ReplicaDB issue #23)",
            )
        ]
