"""The 12 bug benchmarks of the paper's Table 1, as replayable scenarios."""

# Importing the scenario modules registers them.
from repro.bugs import fault_bugs, orbitdb_bugs, replicadb_bugs, roshi_bugs, yorkie_bugs  # noqa: F401
from repro.bugs.registry import (
    BugScenario,
    all_scenarios,
    fault_scenario_names,
    fault_scenarios,
    scenario,
    scenario_names,
)

__all__ = [
    "BugScenario",
    "all_scenarios",
    "fault_scenario_names",
    "fault_scenarios",
    "scenario",
    "scenario_names",
]
