"""The 12 bug benchmarks of Table 1, as replayable scenarios.

Each :class:`BugScenario` packages everything ER-pi needs to hunt one
reported bug:

* a cluster factory wiring up the subject RDL with the defect flag that
  reintroduces the bug;
* the application workload (run once between Start/End to record events —
  the recorded order is always bug-free, as a user's happy-path run is);
* the invariant whose violation *is* the bug manifesting;
* the developer-supplied grouping/constraints ER-pi would be configured with.

Scenario design notes (how the Figure-8a shape arises):

* The recorded workload never violates — the bug needs a *different*
  interleaving, exactly the situation the paper's RQ1 studies.
* Bugs whose trigger window sits in the last ~7 recorded events are
  reachable by DFS's tail-first enumeration inside the 10K cap; bugs whose
  window requires displacing early events are not (Roshi-3, OrbitDB-4,
  OrbitDB-5 in the paper — and here).
* Bugs whose manifestation is gated on a long sync-relay chain completing
  have a tiny violating fraction, which starves uniform random sampling
  (those three plus Yorkie-2 — the paper's Rand failures).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.replay import Assertion
from repro.faults.plan import FaultPlan
from repro.net.cluster import Cluster


class BugScenario(abc.ABC):
    """One reproducible bug benchmark (one row of Table 1)."""

    #: e.g. "Roshi-1"
    name: str
    #: GitHub issue number from the paper's Table 1.
    issue: int
    #: subject library.
    subject: str
    #: number of interleaved events Table 1 reports for this bug.
    expected_events: int
    #: "closed" / "open" per Table 1.
    status: str
    #: "misconception" / "RDL issue" / "misuse" / "-" per Table 1.
    reason: str
    #: one-line description of the defect.
    description: str = ""
    #: replica id for Algorithm-2 scoping (None = no replica-specific pruning).
    replica_scope: Optional[str] = None

    @abc.abstractmethod
    def build_cluster(self, fixed: bool = False) -> Cluster:
        """A fresh cluster with the defective subject installed.

        ``fixed=True`` builds the repaired library instead (defect flags
        removed) — used by the no-false-positive regression tests: the fixed
        library must survive the same exploration without violations."""

    @abc.abstractmethod
    def workload(self, cluster: Cluster) -> None:
        """The application's happy-path run (recorded by ER-pi's proxies)."""

    @abc.abstractmethod
    def make_assertions(self) -> List[Assertion]:
        """Fresh per-interleaving assertions (stateful ones reset per run)."""

    def spec_groups(self) -> List[Tuple[str, str]]:
        """Developer-specified event groups (event ids use the recorder's
        deterministic e1..eN numbering of the workload)."""
        return []

    def independence_constraints(self) -> List[Tuple[str, ...]]:
        """Event-id tuples declared mutually independent (Algorithm 3)."""
        return []

    def failed_ops_constraints(self) -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
        """(predecessors, successors) pairs for Algorithm-4 pruning."""
        return []

    def fault_plan(self) -> Optional[FaultPlan]:
        """Crash/partition faults injected into the hunt (None = no faults).

        Crash–recovery scenarios return a plan anchored on the recorder's
        e1..eN event ids; ``ErPi(..., faults=plan)`` compiles it into the
        schedule."""
        return None

    def fixed_defects(self) -> frozenset:
        """Defect flags removed to obtain the *fixed* library (for the
        no-false-positive regression tests)."""
        return frozenset()

    def __repr__(self) -> str:
        return f"<BugScenario {self.name} (issue #{self.issue}, {self.expected_events} events)>"


_REGISTRY: Dict[str, Callable[[], BugScenario]] = {}


def register(factory: Callable[[], BugScenario]) -> Callable[[], BugScenario]:
    """Class decorator registering a scenario under its ``name``."""
    instance = factory()
    _REGISTRY[instance.name] = factory
    return factory


def scenario(name: str) -> BugScenario:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown bug scenario {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_scenarios() -> List[BugScenario]:
    """All 12 scenarios in Table-1 order."""
    order = [
        "Roshi-1",
        "Roshi-2",
        "Roshi-3",
        "OrbitDB-1",
        "OrbitDB-2",
        "OrbitDB-3",
        "OrbitDB-4",
        "OrbitDB-5",
        "ReplicaDB-1",
        "ReplicaDB-2",
        "Yorkie-1",
        "Yorkie-2",
    ]
    return [scenario(name) for name in order if name in _REGISTRY]


def scenario_names() -> List[str]:
    return [s.name for s in all_scenarios()]


def fault_scenarios() -> List[BugScenario]:
    """The seeded crash–recovery scenarios (one per subject), in order."""
    order = ["Roshi-CR", "Roshi-CR2", "OrbitDB-CR", "ReplicaDB-CR", "Yorkie-CR"]
    return [scenario(name) for name in order if name in _REGISTRY]


def fault_scenario_names() -> List[str]:
    return [s.name for s in fault_scenarios()]
