"""Table-1 bug scenarios for Subject 2 (OrbitDB)."""

from __future__ import annotations

from typing import List, Tuple

from repro.bugs.registry import BugScenario, register
from repro.core.assertions import (
    assert_convergence_when_settled,
    assert_no_failed_op_matching,
)
from repro.core.replay import Assertion
from repro.net.cluster import Cluster
from repro.rdl.orbitdb import OrbitDBStore


def _build(
    defect_by_replica: dict,
    replicas: Tuple[str, ...] = ("A", "B"),
    identity_by_replica: dict = None,
) -> Cluster:
    cluster = Cluster()
    for rid in replicas:
        identity = (identity_by_replica or {}).get(rid, rid)
        store = OrbitDBStore(
            rid, defects=defect_by_replica.get(rid, set()), identity=identity
        )
        cluster.add_replica(rid, store)
    # Shared-store setup: every node accepts every node's writes (the store's
    # base access controller, configured at creation time — not recorded).
    for rid in replicas:
        store = cluster.rdl(rid)
        for other in replicas:
            identity = (identity_by_replica or {}).get(other, other)
            store.grant_access(identity)
    return cluster


@register
class OrbitDB1(BugScenario):
    """Issue #513 — the ordering tie-breaker stops at (clock, identity), so
    two entries written under the *same identity* (one user, two devices)
    with equal Lamport time keep replica-local arrival order: the log order
    differs between replicas forever.
    """

    name = "OrbitDB-1"
    issue = 513
    subject = "OrbitDB"
    expected_events = 12
    status = "open"
    reason = "-"
    description = "equal (clock, identity) entries ordered by arrival"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"undefined_tiebreak"}
        return _build(
            {"A": set(defects), "B": set(defects)},
            identity_by_replica={"A": "user", "B": "user"},
        )

    def fixed_defects(self) -> frozenset:
        return frozenset({"undefined_tiebreak"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.append("p1")                 # e1  clock 1
        cluster.sync("A", "B")         # e2, e3
        b.append("q1")                 # e4  clock 2 (recorded: after sync)
        cluster.sync("B", "A")         # e5, e6
        a.append("p2")                 # e7  clock 3
        cluster.sync("A", "B")         # e8, e9
        b.append("q2")                 # e10 clock 4 (ties with p2 when moved before e9)
        cluster.sync("B", "A")         # e11, e12

    def make_assertions(self) -> List[Assertion]:
        return [assert_convergence_when_settled(["A", "B"])]


@register
class OrbitDB2(BugScenario):
    """Issue #512 — a Lamport clock set far into the future halts progress:
    once the poisoned entry syncs in, every later local append exceeds the
    store's max-clock bound and fails.
    """

    name = "OrbitDB-2"
    issue = 512
    subject = "OrbitDB"
    expected_events = 8
    status = "open"
    reason = "-"
    description = "far-future Lamport clock halts local appends"

    FUTURE = 2_000_000

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"clock_future_halt"}
        return _build({"A": set(defects), "B": set(defects)})

    def fixed_defects(self) -> frozenset:
        return frozenset({"clock_future_halt"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.append("x")                              # e1
        a.append("y")                              # e2
        b.inject_future_entry("evil", self.FUTURE)  # e3
        cluster.sync("B", "A")                     # e4, e5
        cluster.sync("A", "B")                     # e6, e7
        a.clock_time()                             # e8 READ

    def failed_ops_constraints(self):
        # Discovered while replaying: once the poisoned payload has been
        # executed at A (e5), every later local append fails, so the doomed
        # appends' relative order is immaterial (Algorithm 4).
        return [(("e5",), ("e1", "e2"))]

    def make_assertions(self) -> List[Assertion]:
        return [assert_no_failed_op_matching("progress halted")]


@register
class OrbitDB3(BugScenario):
    """Issue #1153 — "could not append entry although write access is
    granted": a synced entry whose writer's grant has not reached the
    receiving replica yet is rejected instead of being admitted by the grant
    travelling in the same payload / arriving later.
    """

    name = "OrbitDB-3"
    issue = 1153
    subject = "OrbitDB"
    expected_events = 15
    status = "closed"
    reason = "misuse"
    description = "entry rejected when it overtakes its access grant"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"unchecked_append"}
        return _build(
            {"A": set(defects), "B": set(defects), "C": set(defects)},
            replicas=("A", "B", "C"),
        )

    def fixed_defects(self) -> frozenset:
        return frozenset({"unchecked_append"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        c = cluster.rdl("C")
        a.grant_access("deploy-key")               # e1
        cluster.sync("A", "C")                     # e2, e3   grant reaches C
        c.append("c1", identity="deploy-key")      # e4       (grouped with e3)
        b.append("b1")                             # e5
        cluster.sync("B", "A")                     # e6, e7
        cluster.sync("B", "C")                     # e8, e9
        cluster.sync("A", "B")                     # e10, e11  grant reaches B
        cluster.sync("C", "B")                     # e12, e13  c1 reaches B
        cluster.sync("C", "A")                     # e14, e15  c1 reaches A

    def spec_groups(self) -> List[Tuple[str, str]]:
        # The deploy pipeline appends right after its grant confirmation.
        return [("e3", "e4")]

    def make_assertions(self) -> List[Assertion]:
        return [assert_no_failed_op_matching("although write access is granted")]


@register
class OrbitDB4(BugScenario):
    """Issue #583 — "head hash didn't match the contents": appends do not
    refresh the cached head set (only flush does), so a sync payload built
    inside an append/flush window ships stale heads and the receiver rejects
    it.

    The deploy-key append that opens the window is itself gated on a
    three-hop grant relay (D -> C -> B -> A), so a uniformly random
    interleaving almost never reaches the window with the append alive, and
    the window sits well before DFS's tail horizon.  Uses 4 replicas to give
    the relay its length (the paper's own workloads are unavailable; see
    EXPERIMENTS.md).
    """

    name = "OrbitDB-4"
    issue = 583
    subject = "OrbitDB"
    expected_events = 18
    status = "closed"
    reason = "misconception"
    description = "sync payload ships stale heads after an un-flushed append"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = {} if fixed else {"A": {"torn_head"}}
        return _build(defects, replicas=("A", "B", "C", "D"))

    def fixed_defects(self) -> frozenset:
        return frozenset({"torn_head"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        c = cluster.rdl("C")
        d = cluster.rdl("D")
        d.grant_access("deploy-key")               # e1
        cluster.sync("D", "C")                     # e2, e3
        cluster.sync("C", "B")                     # e4, e5
        cluster.sync("B", "A")                     # e6, e7   grant lands at A
        a.append("x1", identity="deploy-key")      # e8
        a.flush()                                  # e9
        cluster.sync("A", "C")                     # e10, e11  torn candidate
        b.append("b1")                             # e12
        cluster.sync("B", "C")                     # e13, e14
        c.append("c1")                             # e15
        cluster.sync("C", "B")                     # e16, e17
        b.entries()                                # e18 READ

    def make_assertions(self) -> List[Assertion]:
        return [assert_no_failed_op_matching("head hash")]


@register
class OrbitDB5(BugScenario):
    """Issue #557 — "repo folder keeps getting locked": a sync applied while
    the store is closed takes the repo folder lock to persist the new
    entries and never releases it; the next open fails.

    The lock is only taken when the payload carries *new* entries, which
    requires the three-hop relay D -> C -> B -> A to have delivered d1 to B
    first — the long chain that starves random exploration; the close/open
    pair sits early, out of DFS's reach.
    """

    name = "OrbitDB-5"
    issue = 557
    subject = "OrbitDB"
    expected_events = 24
    status = "closed"
    reason = "misconception"
    description = "sync into a closed store leaks the repo folder lock"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = {} if fixed else {"A": {"lock_leak"}}
        return _build(defects, replicas=("A", "B", "C", "D", "E"))

    def fixed_defects(self) -> frozenset:
        return frozenset({"lock_leak"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        e = cluster.rdl("E")
        # The only write that is ever *new* to A travels the four-hop relay
        # E -> D -> C -> B -> A; the close/open maintenance pair sits right
        # after the delivering sync.  A leak needs that sync displaced into
        # the maintenance window with the whole relay intact ahead of it.
        a.append("a1")                             # e1
        cluster.sync("A", "B")                     # e2, e3
        e.append("x1")                             # e4
        cluster.sync("E", "D")                     # e5, e6
        cluster.sync("D", "C")                     # e7, e8
        cluster.sync("C", "B")                     # e9, e10
        cluster.sync("B", "A")                     # e11, e12  x1 reaches open A
        a.close_store()                            # e13       maintenance restart
        a.open_store()                             # e14
        a.append("a2")                             # e15
        cluster.sync("A", "B")                     # e16, e17
        cluster.sync("A", "C")                     # e18, e19
        cluster.sync("A", "D")                     # e20, e21
        cluster.sync("A", "E")                     # e22, e23
        b.entries()                                # e24 READ

    def make_assertions(self) -> List[Assertion]:
        return [assert_no_failed_op_matching("locked")]
