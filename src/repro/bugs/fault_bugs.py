"""Seeded crash–recovery bug scenarios (one per subject).

Each scenario couples a defect in the subject's *durability* story with a
:class:`~repro.faults.plan.FaultPlan`: the recorded happy path (and its
canonical fault placement) is clean, but displacing the crash/recover window
relative to ordinary events exposes the bug — exactly the class of defect
only a fault-interleaving replay can find.

Design rules shared by all of them:

* The canonical schedule (fault events at their anchor positions) must not
  violate — ER-pi's first replay is the recorded run, and a user's
  happy-path run is bug-free by construction.
* The *fixed* library (defect flags removed) must survive every valid
  schedule, including the fault-bearing ones: crashes on the fixed subject
  are lossless in observables, or the plan's ``recover_before`` anchor
  guarantees a post-recovery re-delivery for everything volatile (see
  :func:`repro.core.assertions.delivery_knowledge` for the settledness
  contract).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bugs.registry import BugScenario, register
from repro.core.assertions import (
    assert_convergence_when_settled,
    assert_no_failed_op_matching,
)
from repro.core.replay import Assertion
from repro.faults.plan import CrashSpec, FaultPlan
from repro.net.cluster import Cluster
from repro.rdl.orbitdb import OrbitDBStore
from repro.rdl.replicadb import ReplicaDBJob
from repro.rdl.roshi import RoshiReplica
from repro.rdl.yorkie import YorkieDocument


@register
class RoshiCR(BugScenario):
    """Crash amnesia amplifying issue #11: the tie-break consults the
    process-memory ``_last_op`` cache, which a crash erases while the Redis
    farm (both stamps of the tie) survives.  A replica that resolved an
    add/delete timestamp tie to "deleted" before the crash resolves the same
    tie to "present" after it — permanent divergence from a peer that never
    restarted.  No non-fault interleaving of this workload diverges: the tie
    is pre-seeded identically on both replicas, so only the crash changes
    anyone's arrival memory.
    """

    name = "Roshi-CR"
    issue = 11
    subject = "Roshi"
    expected_events = 5
    status = "seeded"
    reason = "crash-recovery"
    description = "crash erases the arrival cache the tie-break depends on"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"no_tie_break"}
        cluster = Cluster()
        for rid in ("A", "B"):
            cluster.add_replica(rid, RoshiReplica(rid, defects=set(defects)))
        # Setup (not recorded): both replicas already indexed the event at
        # t=5, so the only recorded update is the tying delete.
        for rid in ("A", "B"):
            cluster.rdl(rid).insert("feed", "m1", 5.0)
        return cluster

    def fixed_defects(self) -> frozenset:
        return frozenset({"no_tie_break"})

    def workload(self, cluster: Cluster) -> None:
        b = cluster.rdl("B")
        b.delete("feed", "m1", 5.0)    # e1  ties with the seeded add
        cluster.sync("B", "A")         # e2, e3   A learns the delete
        cluster.sync("A", "B")         # e4, e5
        # Crash window (f1, f2): canonical position right after e1, where
        # A has no arrival memory worth losing.  Displaced after e3, the
        # restart wipes A's "last op was the delete" memory.

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            crashes=(CrashSpec("A", crash_after="e1", recover_after="e1"),)
        )

    def make_assertions(self) -> List[Assertion]:
        return [assert_convergence_when_settled(["A", "B"])]


@register
class RoshiCR2(BugScenario):
    """Roshi-CR with an extra, unrelated feed update declared independent.

    Same crash-amnesia defect as :class:`RoshiCR`; the additional update e1
    (an insert into a disjoint feed, at the other replica) is declared
    mutually independent with the tying delete e2 via
    :meth:`independence_constraints`, so the hunt exercises
    :class:`~repro.core.pruning.independence.EventIndependencePruner` on
    *fault-bearing* schedules — the sanitizer's fault-class coverage rides
    on this scenario.
    """

    name = "Roshi-CR2"
    issue = 11
    subject = "Roshi"
    expected_events = 6
    status = "seeded"
    reason = "crash-recovery"
    description = "crash amnesia hunted with an independent-events declaration"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"no_tie_break"}
        cluster = Cluster()
        for rid in ("A", "B"):
            cluster.add_replica(rid, RoshiReplica(rid, defects=set(defects)))
        for rid in ("A", "B"):
            cluster.rdl(rid).insert("feed", "m1", 5.0)
        return cluster

    def fixed_defects(self) -> frozenset:
        return frozenset({"no_tie_break"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.insert("other", "x1", 1.0)   # e1  disjoint feed, independent of e2
        b.delete("feed", "m1", 5.0)    # e2  ties with the seeded add
        cluster.sync("B", "A")         # e3, e4
        cluster.sync("A", "B")         # e5, e6

    def independence_constraints(self) -> List[Tuple[str, ...]]:
        return [("e1", "e2")]

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            crashes=(CrashSpec("A", crash_after="e2", recover_after="e2"),)
        )

    def make_assertions(self) -> List[Assertion]:
        return [assert_convergence_when_settled(["A", "B"])]


@register
class OrbitDBCR(BugScenario):
    """Crash flavour of issue #557: the repo folder lock is a file, so it
    survives the process.  A crash while the store is open leaves the stale
    lock behind; with the defect, recovery trusts the lock file and the
    reopen fails with "repo folder locked".  Whether the bug fires depends on
    where the crash lands relative to the maintenance close/open pair — the
    canonical placement (right after the close) is clean.
    """

    name = "OrbitDB-CR"
    issue = 557
    subject = "OrbitDB"
    expected_events = 8
    status = "seeded"
    reason = "crash-recovery"
    description = "crash while the store is open leaks the repo lock file"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"crash_lock_leak"}
        cluster = Cluster()
        for rid in ("A", "B"):
            store = OrbitDBStore(rid, defects=set(defects))
            cluster.add_replica(rid, store)
        for rid in ("A", "B"):
            store = cluster.rdl(rid)
            for other in ("A", "B"):
                store.grant_access(other)
        return cluster

    def fixed_defects(self) -> frozenset:
        return frozenset({"crash_lock_leak"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        a.append("a1")                 # e1
        cluster.sync("A", "B")         # e2, e3
        a.close_store()                # e4   nightly maintenance
        a.open_store()                 # e5
        a.append("a2")                 # e6
        cluster.sync("A", "B")         # e7, e8
        # Crash window (f1, f2): canonically inside the maintenance close
        # (store closed, lock file released — recovery is clean).  Displaced
        # after the reopen e5, the crash leaves the lock file behind and the
        # defective recovery cannot reopen the store.

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            crashes=(CrashSpec("A", crash_after="e4", recover_after="e4"),)
        )

    def make_assertions(self) -> List[Assertion]:
        return [assert_no_failed_op_matching("repo folder")]


@register
class ReplicaDBCR(BugScenario):
    """Deleted-row resurrection: the upstream replication's delete-tombstone
    table is memory-only, so a crash between the delete and a peer's sync
    forgets the deletion.  The stale peer re-inserts the row at the recovered
    replica, while a third replica that kept its tombstone rejects it —
    permanent divergence.  The durable source table itself survives, so the
    canonical schedule (crash before the delete even happens) is clean.
    """

    name = "ReplicaDB-CR"
    issue = 23
    subject = "ReplicaDB"
    expected_events = 14
    status = "seeded"
    reason = "crash-recovery"
    description = "crash drops in-memory tombstones; stale peer resurrects row"

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = set() if fixed else {"volatile_tombstones"}
        cluster = Cluster()
        for rid in ("A", "B", "C"):
            cluster.add_replica(rid, ReplicaDBJob(rid, defects=set(defects)))
        return cluster

    def fixed_defects(self) -> frozenset:
        return frozenset({"volatile_tombstones"})

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        a.source_insert("r1", {"city": "x"})   # e1
        cluster.sync("A", "B")                 # e2, e3
        cluster.sync("A", "C")                 # e4, e5   C now holds r1
        a.source_delete("r1")                  # e6       tombstone at A
        cluster.sync("A", "B")                 # e7, e8   tombstone reaches B
        cluster.sync("C", "A")                 # e9, e10  stale C syncs back
        cluster.sync("A", "C")                 # e11, e12
        cluster.sync("A", "B")                 # e13, e14
        # Crash window (f1, f2): canonically before the delete (nothing to
        # forget).  Displaced after e8, the tombstone is wiped, so the stale
        # sync e9/e10 resurrects r1 at A (and, relayed, at C) while B keeps
        # its tombstone.

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            crashes=(CrashSpec("A", crash_after="e5", recover_after="e5"),)
        )

    def make_assertions(self) -> List[Assertion]:
        return [assert_convergence_when_settled(["A", "B", "C"])]


@register
class YorkieCR(BugScenario):
    """Crash flavour of issue #676: the client eagerly persists its move
    dedup cache but rolls the document back to the last pushed change pack.
    After the restart the replica "remembers" having seen a move whose effect
    rolled back with the document, so the peer's re-delivery is wrongly
    deduplicated and never re-applied — the array orders diverge.  Needs the
    arrival-order move path (``nonconvergent_move``) because the LWW move
    register would re-deliver the move through the document merge.

    The plan's ``recover_before`` anchor pins the restart ahead of the final
    re-delivering sync: every valid schedule re-offers the move to the
    recovered replica, so the fixed library always re-converges (and the
    settledness gate stays sound despite the volatile loss).
    """

    name = "Yorkie-CR"
    issue = 676
    subject = "Yorkie"
    expected_events = 8
    status = "seeded"
    reason = "crash-recovery"
    description = "recovered client dedupes a move whose effect rolled back"

    DEFECTS = frozenset({"nonconvergent_move", "durable_seen_cache"})

    def build_cluster(self, fixed: bool = False) -> Cluster:
        defects = frozenset() if fixed else self.DEFECTS
        cluster = Cluster()
        for rid in ("A", "B"):
            cluster.add_replica(rid, YorkieDocument(rid, defects=set(defects)))
        return cluster

    def fixed_defects(self) -> frozenset:
        return frozenset(self.DEFECTS)

    def workload(self, cluster: Cluster) -> None:
        a = cluster.rdl("A")
        b = cluster.rdl("B")
        a.set(["items"], ["x", "y"])      # e1
        cluster.sync("A", "B")            # e2, e3   push: A's watermark
        b.move_after(["items"], 1, None)  # e4       B moves y to the front
        cluster.sync("B", "A")            # e5, e6   A applies the move
        cluster.sync("B", "A")            # e7, e8   re-delivery
        # Crash window (f1, f2): canonically right after A's push, where
        # document and dedup cache are consistent.  Displaced after e6, the
        # document rolls back to the watermark but the defect persists the
        # cache — the re-delivery e7/e8 is then wrongly skipped.

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            crashes=(
                CrashSpec(
                    "A",
                    crash_after="e3",
                    recover_after="e3",
                    recover_before="e7",
                ),
            )
        )

    def make_assertions(self) -> List[Assertion]:
        return [assert_convergence_when_settled(["A", "B"])]
