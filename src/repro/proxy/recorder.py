"""Event recording: turning proxied RDL calls into ER-pi events.

During the first (recording) run of the workload between ER-pi.Start() and
ER-pi.End(), every proxied RDL call and every cluster sync primitive is
captured as an :class:`~repro.core.events.Event` (paper step 1a/1b).  The
recorded event list is what interleaving generation permutes.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.errors import RecordingError
from repro.core.events import Event, EventKind
from repro.net.cluster import Cluster
from repro.proxy import interceptor

#: Method names that are queries, recorded as READ events.
DEFAULT_READ_METHODS = frozenset(
    {
        "select",
        "get",
        "get_path",
        "value",
        "values",
        "keys",
        "entries",
        "list_value",
        "set_value",
        "map_value",
        "map_get",
        "text_value",
        "flag_value",
        "register_get",
        "array_value",
        "log_order",
        "score",
        "sink_rows",
        "source_rows",
        "sink_matches_source",
        "can_write",
        "clock_time",
    }
)

#: Methods never recorded (host-protocol plumbing, not app-visible events).
#: ``durable_snapshot``/``recover`` belong to the crash–recovery protocol
#: driven by fault events, never to the recorded workload.
DEFAULT_IGNORED_METHODS = frozenset(
    {
        "sync_payload",
        "apply_sync",
        "checkpoint",
        "restore",
        "has_defect",
        "durable_snapshot",
        "recover",
    }
)


class EventRecorder:
    """Captures the workload's RDL interactions on a cluster.

    Instruments every replica's RDL object (updates/reads) and the cluster's
    ``send_sync``/``execute_sync`` primitives (sync events).  ``stop()``
    removes all proxies and freezes the event list.
    """

    def __init__(
        self,
        cluster: Cluster,
        read_methods: Optional[Iterable[str]] = None,
        ignored_methods: Optional[Iterable[str]] = None,
    ) -> None:
        self.cluster = cluster
        self.read_methods: Set[str] = set(read_methods or DEFAULT_READ_METHODS)
        self.ignored: Set[str] = set(ignored_methods or DEFAULT_IGNORED_METHODS)
        self.events: List[Event] = []
        self._counter = itertools.count(1)
        self._recording = False
        self._rdl_to_replica: Dict[int, str] = {}

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._recording:
            raise RecordingError("recorder already started")
        self._recording = True
        for replica_id in self.cluster.replica_ids():
            rdl = self.cluster.rdl(replica_id)
            self._rdl_to_replica[id(rdl)] = replica_id
            methods = [
                name
                for name in interceptor.instrumentable_methods(rdl)
                if name not in self.ignored
            ]
            interceptor.instrument(rdl, self._on_rdl_call, methods=methods)
        interceptor.instrument(
            self.cluster, self._on_cluster_call, methods=["send_sync", "execute_sync"]
        )

    def stop(self) -> List[Event]:
        if not self._recording:
            raise RecordingError("recorder is not running")
        self._recording = False
        for replica_id in self.cluster.replica_ids():
            interceptor.deinstrument(self.cluster.rdl(replica_id))
        interceptor.deinstrument(self.cluster)
        return list(self.events)

    @property
    def recording(self) -> bool:
        return self._recording

    # ------------------------------------------------------------ callbacks

    def _on_rdl_call(
        self, target: Any, method: str, args: tuple, kwargs: dict, result: Any
    ) -> None:
        replica_id = self._rdl_to_replica.get(id(target))
        if replica_id is None:
            raise RecordingError(f"call on unknown RDL instance {target!r}")
        kind = EventKind.READ if method in self.read_methods else EventKind.UPDATE
        self.events.append(
            Event(
                event_id=f"e{next(self._counter)}",
                replica_id=replica_id,
                kind=kind,
                op_name=method,
                args=tuple(args),
                kwargs=tuple(sorted(kwargs.items())),
            )
        )

    def _on_cluster_call(
        self, target: Any, method: str, args: tuple, kwargs: dict, result: Any
    ) -> None:
        params = dict(zip(("sender", "receiver"), args))
        params.update(kwargs)
        sender, receiver = params["sender"], params["receiver"]
        if method == "send_sync":
            kind, executes_at = EventKind.SYNC_REQ, sender
        else:
            kind, executes_at = EventKind.EXEC_SYNC, receiver
        self.events.append(
            Event(
                event_id=f"e{next(self._counter)}",
                replica_id=executes_at,
                kind=kind,
                op_name=method,
                from_replica=sender,
                to_replica=receiver,
            )
        )
