"""Dynamic proxying of RDL functions (ER-pi's Python language binding)."""

from repro.proxy.interceptor import (
    deinstrument,
    instrument,
    instrumentable_methods,
    is_instrumented,
)
from repro.proxy.recorder import EventRecorder

__all__ = [
    "EventRecorder",
    "deinstrument",
    "instrument",
    "instrumentable_methods",
    "is_instrumented",
]
