"""Dynamic proxying of RDL functions — ER-pi's Python language binding.

The paper generates proxies per target language (Go AST rewriting, JS monkey
patching, Java dynamic proxies); in Python the equivalent is runtime method
interception: :func:`instrument` replaces selected bound methods on an
*instance* with recording wrappers, leaving the class and all other
instances untouched — no RDL source modification, as the paper requires.

``deinstrument`` restores the original behaviour, so proxies can be scoped
to the ER-pi.Start()/End() window.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Callback signature: (target, method_name, args, kwargs, result) -> None.
CallHook = Callable[[Any, str, tuple, dict, Any], None]

_PROXY_ATTR = "_erpi_original_methods"
_IN_CALL_ATTR = "_erpi_in_call"


def instrumentable_methods(target: Any) -> List[str]:
    """The public callable methods of ``target`` eligible for proxying."""
    names: List[str] = []
    for name in dir(target):
        if name.startswith("_"):
            continue
        try:
            attribute = getattr(target, name)
        except AttributeError:
            continue
        if callable(attribute) and not inspect.isclass(attribute):
            names.append(name)
    return names


def instrument(
    target: Any,
    on_call: CallHook,
    methods: Optional[Iterable[str]] = None,
    before: bool = False,
) -> List[str]:
    """Proxy the given methods (default: all public) of ``target``.

    The wrapper calls through to the original method, then invokes
    ``on_call`` with the arguments and result (or before the call when
    ``before`` is True, with ``result=None``).  Returns the list of proxied
    method names.  Instrumenting an already-instrumented instance raises —
    nested proxies would double-record events.
    """
    if getattr(target, _PROXY_ATTR, None):
        raise RuntimeError(f"{target!r} is already instrumented")
    selected = list(methods) if methods is not None else instrumentable_methods(target)
    originals: Dict[str, Callable] = {}
    for name in selected:
        original = getattr(target, name)
        if not callable(original):
            raise TypeError(f"attribute {name!r} of {target!r} is not callable")
        originals[name] = original

        def make_wrapper(method_name: str, bound: Callable) -> Callable:
            @functools.wraps(bound)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                # Reentrancy guard: a proxied method calling another proxied
                # method on the same object is library-internal plumbing, not
                # a second application-level event — record only the outer
                # call.
                if getattr(target, _IN_CALL_ATTR, False):
                    return bound(*args, **kwargs)
                object.__setattr__(target, _IN_CALL_ATTR, True)
                try:
                    if before:
                        on_call(target, method_name, args, kwargs, None)
                        return bound(*args, **kwargs)
                    result = bound(*args, **kwargs)
                finally:
                    object.__setattr__(target, _IN_CALL_ATTR, False)
                on_call(target, method_name, args, kwargs, result)
                return result

            return wrapper

        object.__setattr__(target, name, make_wrapper(name, original))
    object.__setattr__(target, _PROXY_ATTR, originals)
    return selected


def deinstrument(target: Any) -> None:
    """Remove the proxies installed by :func:`instrument` (idempotent)."""
    originals: Optional[Dict[str, Callable]] = getattr(target, _PROXY_ATTR, None)
    if not originals:
        return
    for name in originals:
        try:
            object.__delattr__(target, name)
        except AttributeError:
            pass
    object.__delattr__(target, _PROXY_ATTR)
    try:
        object.__delattr__(target, _IN_CALL_ATTR)
    except AttributeError:
        pass


def is_instrumented(target: Any) -> bool:
    return bool(getattr(target, _PROXY_ATTR, None))
